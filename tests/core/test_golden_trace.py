"""Golden-trace regression: the exact memory/port activity of a tiny run.

Pins down the cycle-level externally visible behaviour of the core — the
write pattern into the two population banks, the handshake counts, and the
RNG draw count — so any future FSM change that alters the protocol (even
while preserving results) is caught deliberately rather than silently.
"""

import pytest

from repro.core import GAParameters, GASystem
from repro.core.ga_memory import BANK_SIZE, unpack_word
from repro.fitness import F3
from repro.rng.cellular_automaton import CellularAutomatonPRNG


@pytest.fixture(scope="module")
def traced_run():
    params = GAParameters(
        n_generations=2,
        population_size=4,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    system = GASystem(params, F3())
    writes = []
    rn_pulses = []
    fit_rises = []
    prev = {"wr": 0, "rn": 0, "req": 0}

    def probe(tick):
        p = system.ports
        if p.mem_wr.value and not prev["wr"]:
            writes.append((p.mem_address.value, p.mem_data_out.value))
        if p.rn_taken.value and not prev["rn"]:
            rn_pulses.append(tick)
        if p.fit_request.value and not prev["req"]:
            fit_rises.append(tick)
        prev["wr"] = p.mem_wr.value
        prev["rn"] = p.rn_taken.value
        prev["req"] = p.fit_request.value

    system.sim.probe(probe)
    result = system.run()
    return params, system, result, writes, rn_pulses, fit_rises


class TestGoldenTrace:
    def test_write_count(self, traced_run):
        params, _s, _r, writes, _rn, _f = traced_run
        # init pop (4) + per generation: elite + 3 offspring = 4 -> 12 total
        assert len(writes) == 4 + 2 * 4

    def test_bank_alternation(self, traced_run):
        params, _s, _r, writes, _rn, _f = traced_run
        banks = [addr // BANK_SIZE for addr, _ in writes]
        assert banks[:4] == [0, 0, 0, 0]  # initial population in bank 0
        assert banks[4:8] == [1, 1, 1, 1]  # generation 1 into bank 1
        assert banks[8:12] == [0, 0, 0, 0]  # generation 2 back into bank 0

    def test_slot_order_within_banks(self, traced_run):
        params, _s, _r, writes, _rn, _f = traced_run
        offsets = [addr % BANK_SIZE for addr, _ in writes]
        assert offsets == [0, 1, 2, 3] * 3

    def test_elite_written_first_each_generation(self, traced_run):
        params, _s, result, writes, _rn, _f = traced_run
        # the first write of each generation carries the best-so-far
        for gen, base in ((1, 4), (2, 8)):
            cand, fit = unpack_word(writes[base][1])
            assert fit == result.history[gen - 1].best_fitness

    def test_fitness_request_count(self, traced_run):
        params, _s, result, _w, _rn, fit_rises = traced_run
        assert len(fit_rises) == result.evaluations == 4 + 2 * 3

    def test_rng_draw_count_matches_behavioral(self, traced_run):
        params, _s, _r, _w, rn_pulses, _f = traced_run
        from repro.core.behavioral import BehavioralGA
        from repro.fitness import F3 as F3b

        twin = BehavioralGA(params, F3b(), rng=CellularAutomatonPRNG(params.rng_seed))
        twin.run()
        assert len(rn_pulses) == twin.rng.draws

    def test_memory_contents_match_history(self, traced_run):
        params, system, result, _w, _rn, _f = traced_run
        final_bank = system.core.cur_bank
        stored = system.memory.population(final_bank, params.population_size)
        assert [f for _c, f in stored] == result.history[-1].fitnesses
