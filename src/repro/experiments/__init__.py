"""Experiment runners — one per table and figure of the paper's evaluation.

Every runner returns a structured report (rows or series plus paper
reference values) that the corresponding ``benchmarks/bench_*.py`` harness
executes and prints, and that ``EXPERIMENTS.md`` snapshots.

| Paper artefact | Runner |
|---|---|
| Table I        | :func:`repro.experiments.table1.run_table1` |
| Table V        | :func:`repro.experiments.table5.run_table5` |
| Table VI       | :func:`repro.experiments.table6.run_table6` |
| Tables VII-IX  | :func:`repro.experiments.table789.run_fpga_table` |
| Fig. 7         | :func:`repro.experiments.figures.run_fig7` |
| Figs. 8-12     | :func:`repro.experiments.figures.run_rt_convergence_figures` |
| Figs. 13-16    | :func:`repro.experiments.figures.run_hw_convergence_figures` |
| Sec. IV-C      | :func:`repro.experiments.speedup.run_speedup` |
"""

from repro.experiments.config import (
    FPGA_GRID,
    FPGA_SEEDS,
    TABLE5_RUNS,
    Table5Run,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table789 import run_fpga_table
from repro.experiments.figures import (
    run_fig7,
    run_hw_convergence_figures,
    run_rt_convergence_figures,
)
from repro.experiments.speedup import run_speedup

__all__ = [
    "TABLE5_RUNS",
    "Table5Run",
    "FPGA_SEEDS",
    "FPGA_GRID",
    "run_table1",
    "run_table5",
    "run_table6",
    "run_fpga_table",
    "run_fig7",
    "run_rt_convergence_figures",
    "run_hw_convergence_figures",
    "run_speedup",
]
