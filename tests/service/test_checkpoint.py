"""The checkpoint codec and the slab spill store.

The scheduler's crash-recovery state rides the resilience layer's
checkpoint codec (one encoded tuple per slab entry) inside versioned,
atomically written JSON spill files.  These tests pin the round trip at
both layers: codec encode/decode, slab payload/restore, and the store's
save/claim/discard hygiene including its tolerance for corrupt files.
"""

import itertools
import json

import numpy as np
import pytest

from repro.core.params import GAParameters
from repro.resilience.harden import (
    CHECKPOINT_VERSION,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.service import BatchPolicy, GARequest, RetryPolicy
from repro.service.batcher import JobRecord, Slab, restore_records
from repro.service.checkpoint import SPILL_VERSION, CheckpointStore
from repro.service.jobs import JobHandle


def request(seed=45890, gens=16, pop=8) -> GARequest:
    return GARequest(
        params=GAParameters(
            n_generations=gens, population_size=pop,
            crossover_threshold=10, mutation_threshold=1, rng_seed=seed,
        ),
        retry=RetryPolicy(max_attempts=2, backoff_s=0.01),
        priority=3,
    )


def record(seed=45890, **kw) -> JobRecord:
    req = request(seed=seed, **kw)
    return JobRecord(
        job_id=seed, request=req, handle=JobHandle(seed, req, 0.0),
        submitted_at=0.0, seq=seed,
    )


class TestCheckpointCodec:
    def test_round_trip(self):
        individuals = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        fitnesses = np.array([9, 2, 6, 5, 3], dtype=np.int64)
        encoded = encode_checkpoint(
            generation=7, individuals=individuals, fitnesses=fitnesses,
            best_individual=4, best_fitness=9, rng_state=0xBEEF,
        )
        # must survive JSON (the spill file format)
        encoded = json.loads(json.dumps(encoded))
        gen, ind, fit, best_ind, best_fit, rng_state = decode_checkpoint(encoded)
        assert gen == 7 and best_ind == 4 and best_fit == 9
        assert rng_state == 0xBEEF
        np.testing.assert_array_equal(ind, individuals)
        np.testing.assert_array_equal(fit, fitnesses)
        assert ind.dtype == np.int64

    def test_none_fields_round_trip(self):
        encoded = encode_checkpoint(
            generation=0, individuals=None, fitnesses=None,
            best_individual=0, best_fitness=-1, rng_state=None,
        )
        gen, ind, fit, _, _, rng_state = decode_checkpoint(
            json.loads(json.dumps(encoded))
        )
        assert (gen, ind, fit, rng_state) == (0, None, None, None)

    def test_version_mismatch_is_rejected(self):
        encoded = encode_checkpoint(
            generation=1, individuals=None, fitnesses=None,
            best_individual=0, best_fitness=0, rng_state=1,
        )
        encoded["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            decode_checkpoint(encoded)


class TestSlabPayloadRestore:
    def test_mid_flight_slab_round_trips(self):
        policy = BatchPolicy(admit_interval=4)
        a, b = record(seed=111, gens=16), record(seed=222, gens=12)
        # fake two completed chunks on `a`, one on `b`
        a.remaining, a.chunks, a.evaluations = 8, 2, 80
        a.population, a.rng_state = [5, 6, 7, 8, 1, 2, 3, 4], 0xAA
        a.best_individual, a.best_fitness = 7, 41
        a.stats = [(1, 2, 3), (4, 5, 6)]
        b.remaining, b.chunks, b.evaluations = 8, 1, 40
        b.population, b.rng_state = [9, 9, 9, 9, 2, 2, 2, 2], 0xBB
        slab = Slab([a, b], policy)
        payload = json.loads(json.dumps(slab.checkpoint_payload()))

        restored = restore_records(payload, itertools.count(100), now=1.5)
        assert [r.job_id for r in restored] == [111, 222]
        ra, rb = restored
        assert ra.remaining == 8 and ra.chunks == 2 and ra.evaluations == 80
        assert ra.population == a.population and ra.rng_state == 0xAA
        assert ra.best_individual == 7 and ra.best_fitness == 41
        assert ra.stats == [(1, 2, 3), (4, 5, 6)]
        assert ra.request == a.request  # retry policy, priority, ... survive
        assert rb.population == b.population
        assert ra.seq == 100 and rb.seq == 101  # fresh queue positions
        assert not ra.handle.done()

    def test_fresh_records_round_trip_with_none_population(self):
        slab = Slab([record(seed=333)], BatchPolicy())
        payload = json.loads(json.dumps(slab.checkpoint_payload()))
        (restored,) = restore_records(payload, itertools.count(), now=0.0)
        assert restored.population is None and restored.rng_state is None
        assert restored.remaining == 16


class TestCheckpointStore:
    def test_save_claim_discard_cycle(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(1, {"engine_mode": "exact", "entries": []})
        store.save(2, {"engine_mode": "turbo", "entries": []})
        assert len(store.spilled()) == 2
        store.discard(1)
        assert len(store.spilled()) == 1
        payloads = store.claim_all()
        assert [p["engine_mode"] for p in payloads] == ["turbo"]
        assert store.spilled() == []  # claiming consumes the files

    def test_discard_missing_is_silent(self, tmp_path):
        CheckpointStore(tmp_path).discard(999)

    def test_corrupt_and_mismatched_files_are_skipped(self, tmp_path, caplog):
        store = CheckpointStore(tmp_path)
        store.save(1, {"engine_mode": "exact", "entries": []})
        (tmp_path / "slab-0-7.json").write_text("{half a json")
        (tmp_path / "slab-0-8.json").write_text(
            json.dumps({"spill_version": SPILL_VERSION + 1})
        )
        with caplog.at_level("WARNING", logger="repro.service"):
            payloads = store.claim_all()
        assert len(payloads) == 1
        assert store.spilled() == []  # bad files are consumed too
        assert sum("skipping unreadable checkpoint" in r.message
                   for r in caplog.records) == 2

    def test_save_is_atomic_replace(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(5, {"entries": [], "engine_mode": "exact"})
        assert path.exists() and not path.with_suffix(".tmp").exists()
        data = json.loads(path.read_text())
        assert data["spill_version"] == SPILL_VERSION
