#!/usr/bin/env python3
"""The AUDI-style HLS flow, end to end (Sec. III-A).

Writes the proportionate-selection threshold computation of the GA core as
a behavioral dataflow graph, then walks the full flow:

    DFG -> ASAP/ALAP/mobility -> list scheduling under FU budgets ->
    allocation & binding -> datapath + one-hot controller generation ->
    gate-level verification -> constant-fold optimization -> resource
    estimate

and shows the area/latency design space a resynthesis explores "within a
few minutes" (here: milliseconds).
"""

import time

from repro.analysis.resources import estimate_netlist
from repro.hdl.optimize import optimize
from repro.hdl.scan import Stepper
from repro.hls import DFG, ResourceConstraints, synthesize
from repro.hls.schedule import alap, asap, mobility


def selection_threshold_dfg() -> DFG:
    """threshold = (sum_a + sum_b) scaled and compared (Sec. III-B.2 slice)."""
    d = DFG("sel_threshold")
    sum_a, sum_b = d.input("sum_a"), d.input("sum_b")
    rand = d.input("rand")
    total = d.add(sum_a, sum_b)
    doubled = d.add(total, total)
    scaled = d.sub(doubled, rand)
    limit = d.const(0x7FFF)
    over = d.lt(limit, scaled)
    d.output("threshold", d.mux(over, scaled, limit))
    d.output("total", total)
    return d


def main() -> None:
    dfg = selection_threshold_dfg()
    print(f"behavioral description: {len(dfg.computational_ops)} operations, "
          f"{len(dfg.input_names)} inputs, {len(dfg.output_names)} outputs\n")

    early, late = asap(dfg), alap(dfg)
    slack = mobility(dfg)
    print(f"ASAP length {early.length}, ALAP length {late.length}, "
          f"ops with slack: {sum(1 for s in slack.values() if s > 0)}")

    print("\nbudget      states  ALUs  regs  gates   LUTs  Fmax    verify")
    for label, rc in [("unlimited", None),
                      ("alu=2", ResourceConstraints(alu=2)),
                      ("alu=1", ResourceConstraints(alu=1))]:
        t0 = time.perf_counter()
        result = synthesize(dfg, resources=rc)
        elapsed = (time.perf_counter() - t0) * 1e3
        opt = optimize(result.netlist)
        est = estimate_netlist(opt)

        # verify against the reference evaluator
        stepper = Stepper(result.netlist)
        inputs = {"sum_a": 1234, "sum_b": 4321, "rand": 99}
        out = {}
        for _ in range(2 * result.latency + 2):
            out = stepper.step(**inputs)
        ref = dfg.evaluate(inputs)
        ok = all(out[k] == v for k, v in ref.items())

        print(f"{label:<11} {result.schedule.length:>5}  "
              f"{result.allocation.units.get('alu', 0):>4}  "
              f"{result.allocation.shared_registers:>4}  "
              f"{opt.stats()['gates']:>5}  {est.luts:>5}  "
              f"{est.max_frequency_mhz:>5.1f}  "
              f"{'OK' if ok else 'FAIL'}  (synth {elapsed:.0f} ms)")

    print("\nresynthesis under a new budget takes milliseconds — the")
    print('"easy addition of new features to existing design" argument of')
    print("Sec. III-A, reproduced.")


if __name__ == "__main__":
    main()
