"""Content-addressed run store: canonical keying, caching, replay.

The determinism contract every engine in this repo carries — same
request, bit-identical result — makes finished runs content-addressable.
This package turns that into infrastructure (the ROADMAP's
"fitness-evaluation caching and a content-addressed result store" item,
the run-level generalization of the paper's LUT FEM, Sec. IV-C):

* :mod:`repro.store.keys`     — canonical job keying over the request's
  determinism surface (Table III ``(index, value)`` words, fitness slot,
  seed, engine mode, island/protection config), property-tested so equal
  requests hash equal and every determinism-relevant perturbation moves
  the key;
* :mod:`repro.store.runstore` — the persistent store itself: atomic
  write-then-rename entries with provenance, plus the unified ``spill/``
  home for in-progress slab checkpoints and a ``gc`` sweep;
* :mod:`repro.store.replay`   — ``repro replay``: re-execute any entry
  from its recorded request and assert bit-identity with the stored
  result.

The serving layer (:mod:`repro.service.scheduler`) integrates all three:
cache lookup at admission, in-flight coalescing of duplicate requests,
and write-back on completion.
"""

from repro.store.keys import (
    KEY_SCHEMA_VERSION,
    canonical_json,
    canonical_request_dict,
    canonical_result_dict,
    job_key,
    results_identical,
)
from repro.store.replay import (
    ReplayReport,
    execute_request,
    replay,
    replay_entry,
    run_cached,
)
from repro.store.runstore import STORE_SCHEMA_VERSION, RunStore, StoreEntry

__all__ = [
    "KEY_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "ReplayReport",
    "RunStore",
    "StoreEntry",
    "canonical_json",
    "canonical_request_dict",
    "canonical_result_dict",
    "execute_request",
    "job_key",
    "replay",
    "replay_entry",
    "results_identical",
    "run_cached",
]
