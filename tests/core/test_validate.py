"""Parity of initial-population validation across the two engines.

The serial engine used to silently mask out-of-range members with
``& 0xFFFF`` while the batch engine raised named errors — the same bad
payload produced different populations depending on which engine the
scheduler routed it through.  Both now share
:func:`repro.core.validate.validate_initial_population`; these tests pin
the parity: one payload, one verdict, the same message text.
"""

import numpy as np
import pytest

from repro.core.batch import BatchBehavioralGA
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.core.validate import validate_initial_population
from repro.fitness.functions import by_name

FN = by_name("mBF6_2")
POP = 16


def _params(seed=0x061F):
    return GAParameters(
        n_generations=4, population_size=POP,
        crossover_threshold=12, mutation_threshold=1, rng_seed=seed,
    )


def _serial_error(initial):
    with pytest.raises(ValueError) as excinfo:
        BehavioralGA(_params(), FN).run(initial=initial)
    return str(excinfo.value)


def _batch_error(initial):
    with pytest.raises(ValueError) as excinfo:
        BatchBehavioralGA([_params()], FN).run(
            initial=np.asarray(initial)[None, :]
        )
    return str(excinfo.value)


def test_out_of_range_members_raise_identically():
    bad = np.arange(POP, dtype=np.int64)
    bad[3] = 0x1FFFF  # would have been silently masked to 0xFFFF before
    assert _serial_error(bad) == _batch_error(bad)
    assert "16-bit values" in _serial_error(bad)


def test_negative_members_raise_identically():
    bad = np.arange(POP, dtype=np.int64)
    bad[0] = -7
    assert _serial_error(bad) == _batch_error(bad)


def test_float_dtype_raises_identically():
    bad = np.linspace(0.0, 1.0, POP)
    assert _serial_error(bad) == _batch_error(bad)
    assert "dtype" in _serial_error(bad)


def test_bool_dtype_rejected():
    bad = np.ones(POP, dtype=bool)
    with pytest.raises(ValueError, match="integer array"):
        validate_initial_population(bad, (POP,))


def test_shape_errors_name_the_expected_shape():
    bad = np.arange(POP - 1, dtype=np.int64)
    assert f"({POP},)" in _serial_error(bad)
    with pytest.raises(ValueError, match=rf"\(1, {POP}\)"):
        BatchBehavioralGA([_params()], FN).run(initial=bad[None, :-1])


def test_valid_payload_accepted_by_both_and_copied():
    good = np.arange(POP, dtype=np.uint16)
    out = validate_initial_population(good, (POP,))
    assert out.dtype == np.int64
    out[0] = 99  # the helper copies: caller arrays are never aliased
    assert good[0] == 0

    serial = BehavioralGA(_params(), FN).run(initial=good.astype(np.int64))
    batch = BatchBehavioralGA([_params()], FN).run(
        initial=good.astype(np.int64)[None, :]
    )
    assert serial.best_fitness == batch[0].best_fitness
    assert serial.best_individual == batch[0].best_individual


def test_serial_no_longer_masks_silently():
    """The regression itself: 0x1FFFF must raise, not alias to 0xFFFF."""
    bad = np.full(POP, 0x1FFFF, dtype=np.int64)
    with pytest.raises(ValueError):
        BehavioralGA(_params(), FN).run(initial=bad)
