#!/usr/bin/env python3
"""GA-as-a-service quickstart — submit jobs, get bit-exact results back.

Spins up an in-process :class:`repro.service.GAService` (the same engine
behind ``repro serve``), submits eight jobs spread over three fitness
slots, and prints each result next to a solo serial run of the same seed
to show that serving never changes the numbers — the scheduler batches
compatible jobs into one vectorised ``BatchBehavioralGA`` slab, but every
job keeps its own RNG stream.  Finishes with the service's own metrics:
latency percentiles, queue depth, and batch occupancy.
"""

import os

from repro import BehavioralGA, GAParameters
from repro.fitness.functions import by_name
from repro.service import BatchPolicy, GARequest, GAService

FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))
GENS = 12 if FAST else 64
POP = 16 if FAST else 32


def main() -> None:
    seeds = [45890, 10593, 1567, 777, 4242, 2961, 31337, 8081]
    slots = ["mBF6_2", "mBF7_2", "mShubert2D"]
    jobs = [
        GARequest(
            params=GAParameters(
                n_generations=GENS, population_size=POP,
                crossover_threshold=10, mutation_threshold=1, rng_seed=seed,
            ),
            fitness_name=slots[i % len(slots)],
        )
        for i, seed in enumerate(seeds)
    ]

    policy = BatchPolicy(max_batch=8, max_wait_s=0.01, admit_interval=8)
    print(f"{len(jobs)} jobs over {len(slots)} fitness slots, "
          f"pop {POP} x {GENS} generations\n")

    with GAService(workers=2, mode="thread", policy=policy) as service:
        results = service.run_all(jobs, timeout=300)
        snap = service.snapshot()

    for request, result in zip(jobs, results):
        solo = BehavioralGA(
            request.params, by_name(request.fitness_name),
            record_members=False,
        ).run()
        match = (solo.best_individual == result.best_individual
                 and solo.best_fitness == result.best_fitness)
        print(f"seed {request.params.rng_seed:>5} {request.fitness_name:<10}"
              f" best {result.best_fitness:>5} at {result.best_individual:>5}"
              f" ({result.evaluations} evals, {result.n_chunks} chunks,"
              f" {result.latency_s * 1e3:5.1f} ms)"
              f"  solo match: {'yes' if match else 'NO'}")
        assert match, "serving must be bit-identical to a solo run"

    print("\nservice metrics:")
    print(f"  chunks dispatched : {snap['batching']['chunks']} "
          f"(mean occupancy {snap['batching']['mean_occupancy']:.0%} of "
          f"{snap['batching']['max_batch']} slots)")
    print(f"  max queue depth   : {snap['queue']['max_depth']}")
    print(f"  latency           : p50 {snap['latency']['p50_ms']:.1f} ms, "
          f"p95 {snap['latency']['p95_ms']:.1f} ms")
    print(f"  throughput        : "
          f"{snap['throughput']['generations_per_s']:.0f} generations/sec")
    print("\n(the TCP flavour of this flow: `repro serve` in one shell,")
    print(" `repro submit --seed 45890` in another)")


if __name__ == "__main__":
    main()
