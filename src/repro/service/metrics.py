"""Service metrics: queue depth, batch occupancy, latency, throughput.

One :class:`ServiceMetrics` instance rides along the whole service stack;
every touchpoint (submit, dispatch, chunk completion, job completion)
records into it under a single lock, and :meth:`snapshot` renders the
JSON-ready view that ``bench_service_throughput.py`` dumps into
``BENCH_results.json`` and ``repro serve`` exposes over the wire.
"""

from __future__ import annotations

import json
import threading
import time


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class ServiceMetrics:
    """Thread-safe counters and gauges for one service lifetime."""

    #: cap on per-job latency samples kept for the percentile estimates
    MAX_SAMPLES = 100_000

    def __init__(self, max_batch: int = 1):
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.max_batch = max(1, max_batch)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.chunks = 0
        self.chunk_occupancy_sum = 0.0
        self.max_occupancy = 0
        self.generations_executed = 0
        self.latencies_s: list[float] = []
        self.waits_s: list[float] = []

    # -- recording hooks ------------------------------------------------
    def job_submitted(self, depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self.queue_depth = depth
            self.max_queue_depth = max(self.max_queue_depth, depth)

    def job_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def queue_drained_to(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth

    def chunk_dispatched(self, n_entries: int, chunk_gens: int) -> None:
        with self._lock:
            self.chunks += 1
            self.chunk_occupancy_sum += n_entries / self.max_batch
            self.max_occupancy = max(self.max_occupancy, n_entries)
            self.generations_executed += n_entries * chunk_gens

    def job_completed(self, latency_s: float, wait_s: float) -> None:
        with self._lock:
            self.completed += 1
            if len(self.latencies_s) < self.MAX_SAMPLES:
                self.latencies_s.append(latency_s)
                self.waits_s.append(wait_s)

    def job_failed(self) -> None:
        with self._lock:
            self.failed += 1

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> dict:
        """The full service state as a plain JSON-serializable dict."""
        with self._lock:
            uptime = max(time.monotonic() - self.started_at, 1e-9)
            lat = list(self.latencies_s)
            waits = list(self.waits_s)
            return {
                "uptime_s": round(uptime, 3),
                "jobs": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "rejected": self.rejected,
                    "pending": self.queue_depth,
                },
                "queue": {
                    "depth": self.queue_depth,
                    "max_depth": self.max_queue_depth,
                },
                "batching": {
                    "chunks": self.chunks,
                    "max_batch": self.max_batch,
                    "mean_occupancy": round(
                        self.chunk_occupancy_sum / self.chunks, 4
                    )
                    if self.chunks
                    else 0.0,
                    "max_occupancy": self.max_occupancy,
                },
                "latency": {
                    "p50_ms": round(percentile(lat, 50) * 1e3, 3),
                    "p95_ms": round(percentile(lat, 95) * 1e3, 3),
                    "max_ms": round(max(lat) * 1e3, 3) if lat else 0.0,
                    "mean_wait_ms": round(
                        sum(waits) / len(waits) * 1e3, 3
                    )
                    if waits
                    else 0.0,
                },
                "throughput": {
                    "jobs_per_s": round(self.completed / uptime, 3),
                    "generations_per_s": round(
                        self.generations_executed / uptime, 1
                    ),
                },
            }

    def to_json(self, path: str | None = None) -> str:
        """Render the snapshot as JSON; optionally also write it to a file."""
        text = json.dumps(self.snapshot(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text + "\n")
        return text
