"""Figs. 13-16 — hardware convergence plots (cycle-accurate model).

Regenerates the best/average fitness curves for the paper's four hardware
figures and checks the headline claims: the best solution appears within a
handful of generations, after evaluating only ~1-2% of the solution space.
"""

import pytest

from repro.analysis.plots import ascii_plot
from repro.experiments.figures import run_hw_convergence_figures


@pytest.mark.benchmark(group="figs13-16")
def test_figs_13_to_16_hardware_convergence(benchmark):
    report = benchmark.pedantic(
        run_hw_convergence_figures, kwargs={"cycle_accurate": True},
        rounds=1, iterations=1,
    )
    for fig_id, fig in report["figures"].items():
        xs = fig["generations"] * 2
        ys = fig["best"] + [int(a) for a in fig["average"]]
        print(ascii_plot(
            xs, ys,
            label=(
                f"{fig_id} ({fig['function']}, seed {fig['seed']}): "
                f"best {fig['best_fitness']}, found gen {fig['found_generation']} "
                f"(paper: within {fig['paper_found_within']}), "
                f"{100 * fig['fraction_of_space']:.2f}% of space"
            ),
        ))

    figs = report["figures"]
    for fig in figs.values():
        # best curve monotone (elitism), average approaches best
        best = fig["best"]
        assert all(b >= a for a, b in zip(best, best[1:]))
        assert fig["average"][-1] <= fig["best"][-1]
        assert fig["average"][-1] >= fig["average"][0]
    # Coverage claims: only a small fraction of the space is evaluated
    # before the best solution appears (paper: <1.1% for mBF6_2, <1.9%
    # for mBF7_2, <1.3% for mShubert2D; we allow the same order).
    assert figs["Fig. 13"]["fraction_of_space"] < 0.05
    assert figs["Fig. 16"]["fraction_of_space"] < 0.05
