#!/usr/bin/env python3
"""Fault recovery scenarios: plant damage, engine SEUs, dead FEM failover.

The space-applications scenario of Sec. II-D / Stoica et al. [27], now run
through the resilience layer (``repro.resilience``).  Radiation threatens
an on-board evolvable system in three distinct places, and each one is an
injection scenario here:

1. **The evolved circuit (the plant).**  A stuck-at fault breaks a cell of
   the virtual reconfigurable fabric; the GA core re-evolves the
   configuration *around* the damage (the classic Stoica healing loop).
2. **The GA engine itself.**  Single-event upsets flip bits in the GA
   memory, the CA-PRNG state, and the best register mid-search.  The same
   workload runs unprotected and fully hardened (SECDED-scrubbed memory,
   elite guard, checkpointed rollback) under identical upset streams.
3. **The fitness path.**  The active FEM dies mid-run on the
   cycle-accurate system; the handshake watchdog times out, retries, and
   fails over to a spare FEM slot through the 8-way mux.

Set ``REPRO_EXAMPLES_FAST=1`` to run a reduced (smoke-test) workload.
"""

import os

from repro import BehavioralGA, GAParameters, GASystem
from repro.ehw import FabricFitness, VirtualFabric
from repro.resilience import (
    HARDENED,
    UNPROTECTED,
    CycleResilienceOptions,
    CycleSEUEvent,
    CycleSEUInjector,
    ResilienceHarness,
    UpsetRates,
)

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"


def rows(fitness_value: int) -> str:
    return f"{fitness_value // 4095}/16 truth-table rows"


def scenario_plant_damage(params: GAParameters) -> None:
    print("== scenario 1: stuck-at fault in the evolved circuit ==")
    fabric = VirtualFabric()
    fitness = FabricFitness("majority", fabric)

    healthy = BehavioralGA(params, fitness).run()
    print(f"evolved config {healthy.best_individual:04X}: "
          f"{rows(healthy.best_fitness)} "
          f"(fabric optimum is 14/16 for this cell library)")

    fabric.inject_fault(0, 1)  # radiation strike: cell 0 output stuck high
    fitness.invalidate()
    degraded = fitness(healthy.best_individual)
    print(f"after the strike the deployed config scores {rows(degraded)}")

    recovered = BehavioralGA(params.with_(rng_seed=10593), fitness).run()
    print(f"re-evolved config {recovered.best_individual:04X}: "
          f"{rows(recovered.best_fitness)} — routed around the dead cell "
          f"(13/16 is the damaged fabric's optimum)\n")


def scenario_engine_seu(params: GAParameters) -> None:
    print("== scenario 2: SEUs inside the GA engine ==")
    fitness = FabricFitness("majority", VirtualFabric())
    rate = 5e-4
    baseline = BehavioralGA(params, fitness).run()
    for config in (UNPROTECTED, HARDENED):
        harness = ResilienceHarness(config, UpsetRates.uniform(rate), seed=42)
        result = BehavioralGA(params, fitness, resilience=harness).run()
        outcome = harness.outcomes([result])[0]
        status = (
            f"hung at generation {outcome['hang_gen']}"
            if not outcome["completed"]
            else "completed"
        )
        print(f"{config.name:>11}: {status}, best {outcome['final_best']} "
              f"(fault-free {baseline.best_fitness}); corrected "
              f"{outcome['corrected']}, rollbacks {outcome['rollbacks']}, "
              f"elite repairs {outcome['elite_repairs']}")
    print()


def scenario_fem_failover(params: GAParameters) -> None:
    print("== scenario 3: FEM dies mid-run, watchdog fails over ==")
    fitness = FabricFitness("majority", VirtualFabric())
    cycle_params = params.with_(n_generations=4, population_size=16)
    strike = [CycleSEUEvent(tick=1_000, domain="fem_dead", addr=0)]
    system = GASystem(
        cycle_params,
        {0: fitness, 1: fitness},  # slot 1 is the cold spare
        resilience=CycleResilienceOptions(
            injector=CycleSEUInjector(strike),
            watchdog=True,
            watchdog_timeout=32,
        ),
    )
    result = system.run()
    print(f"run completed with best {result.best_fitness}; watchdog "
          f"timeouts {system.watchdog.timeouts}, failovers "
          f"{system.watchdog.failovers}, now serving from slot "
          f"{system.ports.fitfunc_select.value}")


def main() -> None:
    params = GAParameters(
        n_generations=16 if FAST else 128,
        population_size=64,
        crossover_threshold=10,
        mutation_threshold=4,
        rng_seed=45890,
    )
    scenario_plant_damage(params)
    scenario_engine_seu(params)
    scenario_fem_failover(params)


if __name__ == "__main__":
    main()
