"""Full system assembly — Fig. 4 of the paper.

"The overall GA optimizer consists of three modules, namely, the GA core,
the GA memory, and the RNG.  Additionally, the GA core communicates with a
fitness evaluation module and the actual application using simple two-way
handshaking operations."

:class:`GASystem` wires all of that together (optionally in two clock
domains: the GA module at the 50 MHz-equivalent divided clock, the
initialization/application modules at the 200 MHz base clock, as the
paper's digital clock manager arranges) and drives a complete run from
parameter initialization to ``GA_done``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.behavioral import BehavioralGA
from repro.core.ga_core import GACore
from repro.core.ga_memory import GAMemory
from repro.core.init_module import InitializationModule
from repro.core.params import GAParameters, PRESET_MODES, PresetMode
from repro.core.ports import GAPorts
from repro.core.rng_module import RNGModule
from repro.core.stats import GenerationStats
from repro.fitness.base import FitnessFunction
from repro.fitness.lookup import LookupFEM
from repro.fitness.mux import ExternalFEMPort, FEMInterface, FitnessMux
from repro.hdl.simulator import Simulator
from repro.rng.base import RandomSource
from repro.rng.cellular_automaton import CellularAutomatonPRNG

#: GA-domain clock frequency achieved on the Virtex-II Pro (Table VI).
GA_CLOCK_HZ = 50_000_000
#: Fast-domain clock of the init/application modules (Sec. IV-B).
FAST_CLOCK_HZ = 200_000_000


@dataclass
class GAResult:
    """Outcome of one GA run (either model)."""

    best_individual: int
    best_fitness: int
    history: list[GenerationStats]
    evaluations: int
    params: GAParameters
    fitness_name: str
    #: GA-domain clock cycles from start_GA to GA_done (None for the
    #: behavioural model, which has no clock).
    cycles: int | None = None

    @property
    def runtime_seconds(self) -> float | None:
        """Wall-clock time of the hardware run at the 50 MHz GA clock."""
        if self.cycles is None:
            return None
        return self.cycles / GA_CLOCK_HZ

    def best_series(self) -> list[int]:
        """Best fitness per generation (Figs. 13-16 upper curve)."""
        return [g.best_fitness for g in self.history]

    def average_series(self) -> list[float]:
        """Average fitness per generation (Figs. 13-16 lower curve)."""
        return [g.average for g in self.history]


class GASystem:
    """The complete Fig. 4 testbench: GA module + init + application.

    Parameters
    ----------
    params:
        Programmable parameter set (used when ``preset`` is USER).
    fitness:
        A single function (placed in FEM slot 0) or a dict mapping slot
        numbers (0-7) to functions for the multi-FEM configuration.
    preset:
        Table IV preset selector; non-USER modes skip initialization.
    select:
        Initial ``fitfunc_select`` value.
    rng_source:
        Random source for the RNG module (default: CA PRNG).
    dual_clock:
        Model the paper's two clock domains (GA module at base/4).
    external:
        Optional mapping of slots to :class:`ExternalFEMPort` pins.
    fem_factory:
        Optional callable ``(name, iface, fn) -> Component`` constructing
        each internal FEM; defaults to :class:`LookupFEM`.  Used e.g. by
        the EHW system-class models to install latency-accurate FEMs.
    resilience:
        Optional :class:`~repro.resilience.harden.CycleResilienceOptions`
        arming the soft-error stack: SECDED-encoded GA memory, a
        background scrubber, a FEM handshake watchdog with mux failover,
        and/or a scheduled :class:`~repro.resilience.seu.CycleSEUInjector`
        mutating committed state between clock edges.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`, forwarded to the GA
        core: a ``cycle.generation`` event per generation boundary, a
        ``cycle.phase_cycles`` breakdown at ``GA_done``, and a ``ga.run``
        span around :meth:`run`.  Simulation results are identical with
        tracing on or off.
    """

    def __init__(
        self,
        params: GAParameters | None,
        fitness: FitnessFunction | dict[int, FitnessFunction],
        preset: PresetMode = PresetMode.USER,
        select: int = 0,
        rng_source: RandomSource | None = None,
        dual_clock: bool = False,
        external: dict[int, ExternalFEMPort] | None = None,
        fem_factory=None,
        resilience=None,
        tracer=None,
    ):
        if preset == PresetMode.USER and params is None:
            raise ValueError("user mode requires explicit GAParameters")
        self.params = params
        self.preset = preset
        self.fns = fitness if isinstance(fitness, dict) else {0: fitness}
        self.select = select
        self.external = external or {}
        self.resilience = resilience
        self.tracer = tracer

        self.ports = GAPorts.create()
        if rng_source is None:
            seed = params.rng_seed if params is not None else PRESET_MODES[preset].rng_seed
            rng_source = CellularAutomatonPRNG(seed)
        self.rng_module = RNGModule(self.ports, rng_source)
        self.core = GACore(self.ports, rng_module=self.rng_module)
        self.core.tracer = tracer
        if resilience is not None and resilience.secded:
            # deferred import: repro.resilience.harden imports core modules
            from repro.resilience.harden import SECDEDGAMemory

            self.memory = SECDEDGAMemory(self.ports)
        else:
            self.memory = GAMemory(self.ports)

        ga_iface = FEMInterface(
            candidate=self.ports.candidate,
            fit_request=self.ports.fit_request,
            fit_value=self.ports.fit_value,
            fit_valid=self.ports.fit_valid,
        )
        self.slots = {idx: FEMInterface.create(f"slot{idx}") for idx in self.fns}
        self.mux = FitnessMux(
            "fitness_mux",
            ga_iface,
            self.ports.fitfunc_select,
            slots=self.slots,
            external=self.external,
        )
        make_fem = fem_factory or (
            lambda name, iface, fn: LookupFEM(name, iface, fn)
        )
        self.fems = {
            idx: make_fem(f"fem{idx}", self.slots[idx], fn)
            for idx, fn in self.fns.items()
        }

        self.sim = Simulator()
        ga_divider = 4 if dual_clock else 1
        self.ga_divider = ga_divider
        self.sim.add(self.core, divider=ga_divider)
        self.sim.add(self.memory, divider=ga_divider)
        self.sim.add(self.rng_module, divider=ga_divider)
        # The mux sits on the GA-module boundary; the FEMs and init module
        # run in the fast domain (Sec. IV-B: 200 MHz for init/application).
        self.sim.add(self.mux, divider=ga_divider)
        for fem in self.fems.values():
            self.sim.add(fem, divider=1)

        self.init_module: InitializationModule | None = None
        if preset == PresetMode.USER:
            self.init_module = InitializationModule(self.ports, params)
            self.sim.add(self.init_module, divider=1)

        self.ports.preset.poke(int(preset))
        self.ports.fitfunc_select.poke(select)

        self.scrubber = None
        self.watchdog = None
        if resilience is not None:
            from repro.resilience.harden import FEMWatchdog, MemoryScrubber

            if resilience.scrub_interval:
                if not resilience.secded:
                    raise ValueError("the memory scrubber requires secded=True")
                self.scrubber = MemoryScrubber(
                    self.memory, interval=resilience.scrub_interval
                )
                self.sim.add(self.scrubber, divider=ga_divider)
            if resilience.watchdog:
                fallback = resilience.fallback_order
                if fallback is None:
                    fallback = [s for s in sorted(self.fns) if s != select]
                self.watchdog = FEMWatchdog(
                    self.ports.fit_request,
                    self.ports.fit_valid,
                    self.ports.fitfunc_select,
                    fallback_order=fallback,
                    timeout=resilience.watchdog_timeout,
                    max_retries=resilience.watchdog_retries,
                )
                self.sim.add(self.watchdog, divider=ga_divider)
            if resilience.injector is not None:
                resilience.injector.attach(self)

    # ------------------------------------------------------------------
    def initialize(self, max_ticks: int = 100_000) -> None:
        """Run the parameter-initialization handshake to completion."""
        if self.init_module is None:
            return
        self.sim.run_until(
            lambda: self.init_module.done, max_ticks, label="initialization"
        )
        # Let ga_load's de-assertion land before starting.
        self.sim.step(2)

    def start(self) -> None:
        """Pulse start_GA (the application module launching the search).

        The pulse is held for two GA-domain periods so the divided-clock
        core is guaranteed to sample it."""
        self.ports.start_GA.poke(1)
        self.sim.step(2 * self.ga_divider)
        self.ports.start_GA.poke(0)

    def run(self, max_ticks: int = 200_000_000) -> GAResult:
        """Initialize, start, and simulate until ``GA_done``."""
        from contextlib import nullcontext
        from time import perf_counter

        from repro.obs.metrics import record_engine_run

        tracing = self.tracer is not None and self.tracer.enabled
        run_scope = (
            self.tracer.span(
                "ga.run",
                engine="cycle",
                pop=self.params.population_size if self.params else None,
                generations=self.params.n_generations if self.params else None,
            )
            if tracing
            else nullcontext()
        )
        t_run = perf_counter()
        with run_scope:
            self.initialize()
            self.start()
            self.sim.run_until(
                lambda: self.ports.GA_done.value == 1, max_ticks, label="GA_done"
            )
        record_engine_run(
            self.core.cfg.n_generations, self.core.evaluations,
            perf_counter() - t_run,
        )
        cfg = self.core.cfg
        return GAResult(
            best_individual=self.ports.candidate.value,
            best_fitness=self.core.best_fit,
            history=list(self.core.history),
            evaluations=self.core.evaluations,
            params=cfg,
            fitness_name=self.fns[self.ports.fitfunc_select.value].name
            if self.ports.fitfunc_select.value in self.fns
            else "external",
            cycles=self.core.done_cycle - self.core.start_cycle,
        )


def run_behavioral(
    params: GAParameters,
    fitness: FitnessFunction,
    rng: RandomSource | None = None,
    record_members: bool = True,
) -> GAResult:
    """Convenience wrapper: run the vectorised model with the same defaults
    as :class:`GASystem`."""
    return BehavioralGA(params, fitness, rng=rng, record_members=record_members).run()
