"""Tests for scheduling and allocation."""

import pytest

from repro.hls.allocate import allocate
from repro.hls.dfg import DFG
from repro.hls.schedule import (
    ResourceConstraints,
    alap,
    asap,
    list_schedule,
    mobility,
)


def chain_dfg(depth=4):
    """x -> +1 -> +1 -> ... (pure dependency chain)."""
    d = DFG("chain")
    v = d.input("x")
    one = d.const(1)
    for _ in range(depth):
        v = d.add(v, one)
    d.output("f", v)
    return d


def wide_dfg(width=4):
    """width independent adds reduced pairwise."""
    d = DFG("wide")
    xs = [d.input(f"x{i}") for i in range(width)]
    sums = [d.add(xs[i], xs[(i + 1) % width]) for i in range(width)]
    total = sums[0]
    for s in sums[1:]:
        total = d.add(total, s)
    d.output("f", total)
    return d


class TestASAPALAP:
    def test_chain_is_sequential(self):
        d = chain_dfg(4)
        sched = asap(d)
        assert sched.length == 4
        assert sorted(sched.steps.values()) == [0, 1, 2, 3]

    def test_wide_front_is_parallel(self):
        d = wide_dfg(4)
        sched = asap(d)
        assert sum(1 for s in sched.steps.values() if s == 0) == 4

    def test_alap_matches_asap_length(self):
        d = wide_dfg(4)
        assert alap(d).length == asap(d).length

    def test_alap_pushes_slack_ops_late(self):
        d = wide_dfg(4)
        early, late = asap(d).steps, alap(d).steps
        assert any(late[i] > early[i] for i in early)

    def test_alap_infeasible_length(self):
        with pytest.raises(ValueError):
            alap(chain_dfg(4), length=2)

    def test_mobility_zero_on_critical_path(self):
        d = chain_dfg(4)
        assert set(mobility(d).values()) == {0}

    def test_validate_catches_violation(self):
        d = chain_dfg(2)
        sched = asap(d)
        # corrupt: schedule the consumer before its producer
        ops = sorted(sched.steps)
        sched.steps[ops[1]] = 0
        with pytest.raises(ValueError):
            sched.validate()


class TestListScheduling:
    def test_unlimited_matches_asap_length(self):
        d = wide_dfg(4)
        sched = list_schedule(d, ResourceConstraints())
        assert sched.length == asap(d).length

    def test_single_alu_serializes(self):
        d = wide_dfg(4)  # 7 adds total
        sched = list_schedule(d, ResourceConstraints(alu=1))
        assert sched.length == 7
        # never more than one ALU op per step
        for step in range(sched.length):
            assert len(sched.ops_in_step(step)) <= 1

    def test_two_alus_halve_the_front(self):
        d = wide_dfg(4)
        one = list_schedule(d, ResourceConstraints(alu=1)).length
        two = list_schedule(d, ResourceConstraints(alu=2)).length
        assert two < one

    def test_dependencies_respected(self):
        d = chain_dfg(5)
        sched = list_schedule(d, ResourceConstraints(alu=2))
        sched.validate()
        assert sched.length == 5  # chain can't be compressed


class TestAllocation:
    def test_unit_counts_are_peak_usage(self):
        d = wide_dfg(4)
        alloc = allocate(asap(d))
        assert alloc.units["alu"] == 4  # the parallel front

    def test_single_alu_binding(self):
        d = wide_dfg(4)
        alloc = allocate(list_schedule(d, ResourceConstraints(alu=1)))
        assert alloc.units["alu"] == 1
        assert len(alloc.ops_on_unit("alu", 0)) == 7

    def test_lifetimes_cover_uses(self):
        d = chain_dfg(3)
        sched = asap(d)
        alloc = allocate(sched)
        for index, (birth, last) in alloc.lifetimes.items():
            assert birth == sched.steps[index]
            assert last >= birth

    def test_register_sharing_bounded(self):
        d = wide_dfg(4)
        alloc = allocate(list_schedule(d, ResourceConstraints(alu=1)))
        assert 1 <= alloc.shared_registers <= len(d.computational_ops)

    def test_output_values_live_to_end(self):
        d = chain_dfg(2)
        sched = asap(d)
        alloc = allocate(sched)
        final_op = max(sched.steps, key=lambda i: sched.steps[i])
        assert alloc.lifetimes[final_op][1] == sched.length - 1
