"""Observability overhead: disabled tracing must be free, enabled cheap.

Three measurements over the PR 1 batched baseline (the 24-cell Table VII
grid through :func:`repro.core.batch.run_batched` equivalents):

* **disabled** — engines constructed with ``tracer=None`` (the exact
  pre-instrumentation hot loop) vs engines constructed with the explicit
  :data:`NULL_TRACER` (the instrumented-but-disabled path).  Interleaved
  A/B rounds with a median-of-rounds estimate must agree within 2% — the
  issue's acceptance bound on disabled-tracing overhead;
* **anchor** — the batched engine must still beat the looped serial
  engine by the PR 1 factor (>= 5x), proving instrumentation did not
  erode the baseline win;
* **enabled** — the full-tracing cost is measured and *reported* (into
  ``BENCH_results.json`` via ``benchmark.extra_info``), not asserted:
  enabled tracing is allowed to cost what it costs.
"""

import time

import pytest

from conftest import print_table
from repro.core.batch import BatchBehavioralGA
from repro.core.behavioral import BehavioralGA
from repro.experiments.config import fpga_sweep_params
from repro.fitness import MBF6_2
from repro.obs import NULL_TRACER, Tracer

#: interleaved timing rounds per variant; medians cancel drift/jitter
ROUNDS = 7


def _grid_jobs():
    fn = MBF6_2()
    fn.table()
    return [(params, fn) for params in fpga_sweep_params()]


def _sweep(jobs, tracer):
    """One full grid sweep, batched by population size (the PR 1 shape);
    results come back in the original job order."""
    by_pop: dict[int, list] = {}
    for i, (params, fn) in enumerate(jobs):
        by_pop.setdefault(params.population_size, []).append((i, params, fn))
    results = [None] * len(jobs)
    for group in by_pop.values():
        params_list = [p for _, p, _ in group]
        fns = [f for _, _, f in group]
        batch = BatchBehavioralGA(
            params_list, fns, record_members=False, tracer=tracer
        )
        for (i, _, _), result in zip(group, batch.run()):
            results[i] = result
    return results


def _timed(fn_call):
    t0 = time.perf_counter()
    result = fn_call()
    return time.perf_counter() - t0, result


@pytest.mark.benchmark(group="obs-overhead")
def test_disabled_tracing_overhead_within_2pct(benchmark):
    jobs = _grid_jobs()
    _sweep(jobs, None)  # warm orbit/slot tables and allocator

    none_times, null_times = [], []
    baseline = None
    for round_no in range(ROUNDS):
        # alternate A/B order so cache/turbo drift cannot bias one variant
        variants = [(None, none_times), (NULL_TRACER, null_times)]
        if round_no % 2:
            variants.reverse()
        for tracer_arg, bucket in variants:
            t, results = _timed(lambda: _sweep(jobs, tracer_arg))
            bucket.append(t)
            # the disabled path must also stay bit-identical, every round
            key = [
                (r.best_individual, r.best_fitness, r.evaluations)
                for r in results
            ]
            if baseline is None:
                baseline = key
            assert key == baseline

    # best-of-rounds: the least-perturbed observation of each variant
    t_none = min(none_times)
    t_null = min(null_times)
    overhead = t_null / t_none - 1.0

    # enabled tracing: measured once, reported (not asserted)
    tracer = Tracer()
    t_traced, r_traced = _timed(lambda: _sweep(jobs, tracer))
    assert [
        (r.best_individual, r.best_fitness, r.evaluations) for r in r_traced
    ] == baseline
    enabled_ratio = t_traced / t_none

    benchmark.extra_info["disabled_overhead_pct"] = round(overhead * 100, 2)
    benchmark.extra_info["enabled_cost_ratio"] = round(enabled_ratio, 3)
    benchmark.extra_info["trace_records"] = len(tracer.records)
    benchmark.pedantic(_sweep, args=(jobs, None), rounds=1, iterations=1)

    print_table(
        "Observability overhead (24-run Table VII grid, best of "
        f"{ROUNDS} interleaved rounds)",
        [
            {"variant": "tracer=None (pre-instrumentation path)",
             "time_s": round(t_none, 4), "ratio": 1.0},
            {"variant": "NULL_TRACER (disabled instrumentation)",
             "time_s": round(t_null, 4),
             "ratio": round(t_null / t_none, 4)},
            {"variant": "live Tracer (full span/event stream)",
             "time_s": round(t_traced, 4),
             "ratio": round(enabled_ratio, 4)},
        ],
    )
    print(f"disabled overhead: {overhead * 100:+.2f}% (bound: 2%)")
    print(f"enabled cost: {enabled_ratio:.2f}x, {len(tracer.records)} records")

    assert overhead < 0.02, (
        f"disabled tracing costs {overhead * 100:.2f}% (> 2% bound)"
    )


@pytest.mark.benchmark(group="obs-overhead")
def test_batched_speedup_anchor_holds_with_instrumentation(benchmark):
    """The PR 1 acceptance anchor: instrumented batched engine still >= 5x
    the looped serial engine on the 24-run grid."""
    jobs = _grid_jobs()
    _sweep(jobs, None)  # warm

    t_loop, looped = _timed(lambda: [
        BehavioralGA(params, fn, record_members=False).run()
        for params, fn in jobs
    ])
    t_batch, batched = _timed(lambda: _sweep(jobs, None))
    benchmark.pedantic(_sweep, args=(jobs, None), rounds=1, iterations=1)

    assert [r.best_fitness for r in looped] == [r.best_fitness for r in batched]
    speedup = t_loop / t_batch
    benchmark.extra_info["batched_speedup"] = round(speedup, 2)
    print(f"\nbatched speedup with instrumentation in place: {speedup:.1f}x")
    assert speedup >= 5.0
