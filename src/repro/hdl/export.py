"""Gate-level netlist export/import — the soft-IP deliverable.

"The core is soft in nature i.e., a gate-level netlist is provided which can
be readily integrated with the user's system."  This module writes a
:class:`~repro.hdl.netlist.Netlist` as a structural Verilog-style text file
over the paper's cell alphabet (NAND/NOR/AND/OR/XOR/... + SCAN_REGISTER)
and parses it back, with a round-trip guarantee (property-tested).

The emitted dialect is deliberately plain — one cell instance per line,
named ports — so it diffs cleanly and resembles what the paper's flattening
scripts produce from SIS output.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.hdl.gates import DFF, Gate, GateType
from repro.hdl.netlist import Netlist, NetlistError

_CELL_NAMES = {
    GateType.AND: "AND2",
    GateType.OR: "OR2",
    GateType.NAND: "NAND2",
    GateType.NOR: "NOR2",
    GateType.XOR: "XOR2",
    GateType.XNOR: "XNOR2",
    GateType.NOT: "INV",
    GateType.BUF: "BUF",
    GateType.CONST0: "TIE0",
    GateType.CONST1: "TIE1",
}
_CELLS_BY_NAME = {v: k for k, v in _CELL_NAMES.items()}

#: Sequential cell name; becomes SCAN_REGISTER when a chain is present.
_DFF_CELL = "DFF"
_SCAN_CELL = "SCAN_REGISTER"


def write_netlist(netlist: Netlist) -> str:
    """Serialize a netlist to the structural text format."""
    lines = [f"module {netlist.name};"]
    for port, nets in netlist.inputs.items():
        lines.append(f"  input [{len(nets)-1}:0] {port} = {_netvec(nets)};")
    for port, nets in netlist.outputs.items():
        lines.append(f"  output [{len(nets)-1}:0] {port} = {_netvec(nets)};")
    lines.append(f"  nets {netlist.net_count};")
    for i, gate in enumerate(netlist.gates):
        cell = _CELL_NAMES[gate.type]
        ins = " ".join(f"n{n}" for n in gate.inputs)
        lines.append(f"  {cell} g{i} (n{gate.output}{' ' if ins else ''}{ins});")
    for i, dff in enumerate(netlist.dffs):
        cell = _SCAN_CELL if dff.scan_index >= 0 else _DFF_CELL
        extra = f" scan={dff.scan_index}" if dff.scan_index >= 0 else ""
        lines.append(
            f"  {cell} r{i} (q=n{dff.q} d=n{dff.d} init={dff.init}{extra});"
        )
    if netlist.scan_ports is not None:
        t, si, so = netlist.scan_ports
        lines.append(f"  scan_chain test=n{t} scanin=n{si} scanout=n{so};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _netvec(nets: Iterable[int]) -> str:
    return "{" + ",".join(f"n{n}" for n in nets) + "}"


_PORT_RE = re.compile(
    r"^\s*(input|output) \[\d+:0\] (\S+) = \{([^}]*)\};\s*$"
)
_GATE_RE = re.compile(r"^\s*(\w+) g\d+ \(n(\d+)((?: n\d+)*)\);\s*$")
_DFF_RE = re.compile(
    r"^\s*(DFF|SCAN_REGISTER) r\d+ \(q=n(\d+) d=n(\d+) init=(\d)(?: scan=(\d+))?\);\s*$"
)
_SCAN_RE = re.compile(r"^\s*scan_chain test=n(\d+) scanin=n(\d+) scanout=n(\d+);\s*$")


def read_netlist(text: str) -> Netlist:
    """Parse the structural text format back into a Netlist."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines or not lines[0].startswith("module "):
        raise NetlistError("missing module header")
    nl = Netlist(lines[0].split()[1].rstrip(";"))

    net_count = None
    for line in lines[1:]:
        if line.strip() == "endmodule":
            break
        match = _PORT_RE.match(line)
        if match:
            direction, port, vec = match.groups()
            nets = [int(tok.strip()[1:]) for tok in vec.split(",") if tok.strip()]
            if direction == "input":
                nl.inputs[port] = nets
            else:
                nl.outputs[port] = nets
            continue
        if line.strip().startswith("nets "):
            net_count = int(line.strip().split()[1].rstrip(";"))
            nl.net_count = net_count
            continue
        match = _GATE_RE.match(line)
        if match:
            cell, out, ins = match.groups()
            if cell not in _CELLS_BY_NAME:
                raise NetlistError(f"unknown cell {cell!r}")
            inputs = tuple(int(tok[1:]) for tok in ins.split())
            nl.gates.append(Gate(_CELLS_BY_NAME[cell], inputs, int(out)))
            nl._driven.add(int(out))
            continue
        match = _DFF_RE.match(line)
        if match:
            _cell, q, d, init, scan = match.groups()
            nl.dffs.append(
                DFF(
                    d=int(d),
                    q=int(q),
                    init=int(init),
                    scan_index=int(scan) if scan is not None else -1,
                )
            )
            nl._driven.add(int(q))
            continue
        match = _SCAN_RE.match(line)
        if match:
            nl.scan_ports = tuple(int(g) for g in match.groups())  # type: ignore[assignment]
            continue
        raise NetlistError(f"unparseable line: {line!r}")
    if net_count is None:
        raise NetlistError("missing nets declaration")
    for nets in nl.inputs.values():
        nl._driven.update(nets)
    return nl


# ----------------------------------------------------------------------
# lint: integration checks a soft-IP consumer runs before synthesis
# ----------------------------------------------------------------------
def lint(netlist: Netlist) -> list[str]:
    """Structural checks: multiple drivers, floating nets, dangling
    outputs, combinational cycles.  Returns a list of human-readable
    problems (empty = clean)."""
    problems: list[str] = []
    drivers: dict[int, int] = {}
    for gate in netlist.gates:
        drivers[gate.output] = drivers.get(gate.output, 0) + 1
    for dff in netlist.dffs:
        drivers[dff.q] = drivers.get(dff.q, 0) + 1
    for nets in netlist.inputs.values():
        for n in nets:
            drivers[n] = drivers.get(n, 0) + 1

    for net, count in drivers.items():
        if count > 1:
            problems.append(f"net n{net} has {count} drivers")

    used: set[int] = set()
    for gate in netlist.gates:
        used.update(gate.inputs)
    for dff in netlist.dffs:
        used.add(dff.d)
    for nets in netlist.outputs.values():
        used.update(nets)
    for net in used:
        if net not in drivers:
            problems.append(f"net n{net} is read but never driven")

    try:
        netlist.topo_order()
    except NetlistError as exc:
        problems.append(str(exc))
    return problems
