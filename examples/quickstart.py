#!/usr/bin/env python3
"""Quickstart: program the GA IP core and optimize a hard test function.

Walks the exact usage flow of Sec. III-B.8:

1. build the Fig. 4 system (GA core + GA memory + CA RNG + lookup FEM);
2. program the five Table III parameters over the initialization handshake;
3. pulse ``start_GA`` and simulate until ``GA_done``;
4. read the best candidate off the candidate bus.

Then re-runs the same configuration on the vectorised behavioural twin and
shows the two models agree bit for bit.
"""

import os

from repro import BehavioralGA, GAParameters, GASystem
from repro.analysis.convergence import convergence_generation, first_hit_generation
from repro.analysis.plots import render_convergence
from repro.fitness import MBF6_2

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"


def main() -> None:
    params = GAParameters(
        n_generations=16 if FAST else 64,
        population_size=64,
        crossover_threshold=10,  # crossover rate 10/16 = 0.625
        mutation_threshold=1,  # mutation rate 1/16 = 0.0625
        rng_seed=0x061F,
    )
    fn = MBF6_2()
    optimum_x, optimum_f = fn.optimum()

    print("== cycle-accurate hardware model ==")
    system = GASystem(params, fn)
    result = system.run()
    print(f"best candidate : x = {result.best_individual} "
          f"(bus reads {system.ports.candidate.value})")
    print(f"best fitness   : {result.best_fitness} "
          f"(global optimum {optimum_f} at x = {optimum_x})")
    print(f"evaluations    : {result.evaluations}")
    print(f"GA cycles      : {result.cycles} "
          f"({1e3 * result.runtime_seconds:.3f} ms at the 50 MHz GA clock)")
    print(f"found at gen   : {first_hit_generation(result.history)}")
    print(f"converged gen  : {convergence_generation(result.history)} "
          f"(5% average-fitness rule of Table V)")

    print("\n== behavioural twin (same RNG stream) ==")
    twin = BehavioralGA(params, fn).run()
    agree = twin.best_individual == result.best_individual and [
        g.as_tuple() for g in twin.history
    ] == [g.as_tuple() for g in result.history]
    print(f"bit-identical to the hardware model: {agree}")

    print()
    print(render_convergence(result.history, label="mBF6_2 convergence"))


if __name__ == "__main__":
    main()
