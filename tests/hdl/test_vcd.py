"""Tests for the VCD waveform recorder."""

import pytest

from repro.hdl.register import Counter
from repro.hdl.signal import Signal
from repro.hdl.simulator import Simulator
from repro.hdl.vcd import VCDRecorder, _identifier


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        assert all(all(33 <= ord(c) <= 126 for c in i) for i in ids)


class TestRecording:
    def build(self):
        q = Signal("count", 4)
        en = Signal("enable", 1, init=1)
        sim = Simulator()
        sim.add(Counter("c", q, en))
        rec = VCDRecorder([q, en]).attach(sim)
        return sim, rec, q, en

    def test_records_changes_only(self):
        sim, rec, q, en = self.build()
        sim.step(3)
        count_changes = [c for c in rec.changes if c[1] == "count"]
        enable_changes = [c for c in rec.changes if c[1] == "enable"]
        assert len(count_changes) == 3  # 1, 2, 3
        assert len(enable_changes) == 1  # initial capture only

    def test_dump_structure(self):
        sim, rec, q, en = self.build()
        sim.step(2)
        text = rec.dump()
        assert "$timescale 20 ns $end" in text
        assert "$var wire 4" in text and "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "#1" in text and "#2" in text
        assert "b1 " in text or "b10 " in text

    def test_scalar_vs_vector_format(self):
        sim, rec, q, en = self.build()
        sim.step(1)
        text = rec.dump()
        # 1-bit signals dump as '1<id>'; buses as 'b<bits> <id>'
        en_id = rec.ids["enable"]
        q_id = rec.ids["count"]
        assert f"1{en_id}\n" in text
        assert f"b1 {q_id}\n" in text

    def test_save(self, tmp_path):
        sim, rec, q, en = self.build()
        sim.step(2)
        path = tmp_path / "wave.vcd"
        rec.save(str(path))
        assert path.read_text().startswith("$date")

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            VCDRecorder([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            VCDRecorder([Signal("x", 1), Signal("x", 2)])

    def test_ga_system_waveform(self):
        # Record the fitness handshake of a real (tiny) GA run.
        from repro.core import GAParameters, GASystem
        from repro.fitness import F3

        params = GAParameters(1, 4, 10, 1, 45890)
        system = GASystem(params, F3())
        ports = system.ports
        rec = VCDRecorder(
            [ports.fit_request, ports.fit_valid, ports.candidate, ports.GA_done]
        ).attach(system.sim)
        system.run()
        text = rec.dump()
        req_id = rec.ids[ports.fit_request.name]
        # the handshake toggled many times: at least one 0->1 and 1->0 each
        assert text.count(f"1{req_id}") >= 4
        assert text.count(f"0{req_id}") >= 4
