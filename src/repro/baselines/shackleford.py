"""Shackleford et al.'s survival-based steady-state GA [7].

Table I row: fixed population (64 or 128), fixed generations, *survival*
selection, single-point crossover, CA RNG.  The architecture is steady
state: two randomly addressed parents produce one offspring per pipeline
beat, and the offspring *survives* (overwriting a randomly addressed victim)
only if its fitness beats the victim's — the survival rule that gives the
design its name and its pipeline-friendly data flow.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, PopulationBaseline
from repro.fitness.base import FitnessFunction
from repro.rng.cellular_automaton import CellularAutomatonPRNG


class ShacklefordGA(PopulationBaseline):
    """Steady-state survival GA."""

    name = "Shackleford et al. [7]"
    population_size = 64
    elitist = False  # survival preserves good members implicitly
    CROSSOVER_THRESHOLD = 12
    MUTATION_THRESHOLD = 2
    FIXED_SEED = 0x6A09

    def __init__(self, rng=None):
        super().__init__(rng or CellularAutomatonPRNG(self.FIXED_SEED))

    def _rand_index(self) -> int:
        return self.rng.next_word() % self.population_size

    def run(self, fitness: FitnessFunction, evaluation_budget: int) -> BaselineResult:
        table = fitness.table()
        pop = self.population_size
        inds = self.rng.block(pop).astype(np.int64)
        fits = table[inds].astype(np.int64)
        evals = pop
        best_idx = int(fits.argmax())
        best_ind, best_fit = int(inds[best_idx]), int(fits[best_idx])
        series = [best_fit]

        while evals < evaluation_budget:
            p1 = int(inds[self._rand_index()])
            p2 = int(inds[self._rand_index()])
            if self._rand4() < self.CROSSOVER_THRESHOLD:
                off, _ = self._crossover_point(p1, p2)
            else:
                off = p1
            if self._rand4() < self.MUTATION_THRESHOLD:
                off = self._mutate_bit(off)
            f = int(table[off])
            evals += 1
            victim = self._rand_index()
            if f > int(fits[victim]):  # survival rule
                inds[victim] = off
                fits[victim] = f
            if f > best_fit:
                best_ind, best_fit = off, f
            if evals % pop == 0:
                series.append(best_fit)

        return BaselineResult(self.name, best_ind, best_fit, evals, series)
