"""Tests for the software GA and its operation counters."""

from repro.baselines.software_ga import OpCounters, SoftwareGA
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness import BF6, MBF6_2


def params(**overrides):
    base = dict(
        n_generations=8,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestAlgorithmIdentity:
    def test_matches_behavioral_model_exactly(self):
        # "similar to the GA optimization algorithm in the IP core" — in our
        # reproduction it is *identical*, so hardware-vs-software speedup is
        # apples to apples.
        p = params()
        sw = SoftwareGA(p, BF6()).run()
        hw = BehavioralGA(p, BF6()).run()
        assert sw.best_individual == hw.best_individual
        assert [g.as_tuple() for g in sw.history] == [
            g.as_tuple() for g in hw.history
        ]

    def test_paper_configuration_runs(self):
        # Sec. IV-C: pop 32, crossover 0.625 (threshold 10), mutation
        # 0.0625 (threshold 1), 32 generations, mBF6_2.  The elite carries
        # its stored fitness, so evals = pop + G*(pop-1).
        p = params(n_generations=32, population_size=32)
        result = SoftwareGA(p, MBF6_2()).run()
        assert result.evaluations == 32 + 32 * 31


class TestOpCounters:
    def test_fitness_calls_equal_evaluations(self):
        p = params()
        ga = SoftwareGA(p, BF6())
        result = ga.run()
        assert ga.ops.fitness_calls == result.evaluations == 16 + 8 * 15

    def test_selection_scans_bounded_by_popsize(self):
        p = params()
        ga = SoftwareGA(p, BF6())
        ga.run()
        # two selections per offspring pair, each scanning <= pop members
        pairs_total = 8 * 8  # ceil((pop-1)/2) pairs per generation x gens
        assert 0 < ga.ops.selection_scans <= 2 * 16 * pairs_total

    def test_counters_reset_between_runs(self):
        # A fresh instance (same seed) must reproduce the same counts; and
        # run() must zero the counters rather than accumulate.
        a = SoftwareGA(params(), BF6())
        a.run()
        b = SoftwareGA(params(), BF6())
        b.run()
        assert a.ops == b.ops

    def test_total_sums_fields(self):
        ops = OpCounters(1, 2, 3, 4, 5)
        assert ops.total() == 15

    def test_rng_calls_dominated_by_draws(self):
        ga = SoftwareGA(params(), BF6())
        ga.run()
        # at least one draw per offspring decision plus init population
        assert ga.ops.rng_calls >= 16 + 8 * (16 - 1)
