"""SECDED(39,32) codec properties: the claims ECC protection rests on."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.resilience.secded import (
    CODEWORD_BITS,
    DATA_BITS,
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DOUBLE,
    secded_decode,
    secded_encode,
    secded_extract,
    secded_scrub,
)

words32 = st.integers(0, (1 << DATA_BITS) - 1)


class TestRoundtrip:
    @given(words32)
    def test_encode_extract_roundtrip(self, word):
        assert int(secded_extract(secded_encode(word))) == word

    @given(words32)
    def test_clean_codeword_decodes_clean(self, word):
        data, status = secded_decode(secded_encode(word))
        assert int(data) == word
        assert int(status) == STATUS_CLEAN

    def test_vectorized_roundtrip(self):
        words = np.arange(0, 1 << 16, 257, dtype=np.int64)
        codes = secded_encode(words)
        assert codes.dtype == np.int64
        np.testing.assert_array_equal(secded_extract(codes), words)

    def test_codeword_fits_39_bits(self):
        code = int(secded_encode((1 << DATA_BITS) - 1))
        assert code < (1 << CODEWORD_BITS)


class TestSingleBitCorrection:
    @given(words32, st.integers(0, CODEWORD_BITS - 1))
    def test_any_single_flip_corrected(self, word, bit):
        data, status = secded_decode(secded_encode(word) ^ (1 << bit))
        assert int(status) == STATUS_CORRECTED
        assert int(data) == word

    def test_all_positions_exhaustively(self):
        # every one of the 39 flip positions, for several data words at once
        words = np.array([0, 1, 0xDEADBEEF, 0xFFFFFFFF, 0x12345678], dtype=np.int64)
        codes = secded_encode(words)
        for bit in range(CODEWORD_BITS):
            fixed, data, status = secded_scrub(codes ^ (np.int64(1) << bit))
            assert (status == STATUS_CORRECTED).all(), f"bit {bit} not corrected"
            np.testing.assert_array_equal(data, words)
            np.testing.assert_array_equal(fixed, codes)


class TestDoubleBitDetection:
    def test_all_741_double_flips_flagged(self):
        code = int(secded_encode(0xCAFEBABE & 0xFFFFFFFF))
        pairs = [
            (i, j)
            for i in range(CODEWORD_BITS)
            for j in range(i + 1, CODEWORD_BITS)
        ]
        assert len(pairs) == 741
        corrupted = np.array(
            [code ^ (1 << i) ^ (1 << j) for i, j in pairs], dtype=np.int64
        )
        _fixed, _data, status = secded_scrub(corrupted)
        assert (status == STATUS_DOUBLE).all()

    @given(words32, st.integers(0, CODEWORD_BITS - 1), st.integers(0, CODEWORD_BITS - 1))
    def test_double_flip_never_miscorrects_silently(self, word, b1, b2):
        if b1 == b2:
            return
        _data, status = secded_decode(secded_encode(word) ^ (1 << b1) ^ (1 << b2))
        assert int(status) == STATUS_DOUBLE


class TestScrub:
    def test_scrub_mixed_batch(self):
        words = np.array([10, 20, 30], dtype=np.int64)
        codes = secded_encode(words)
        corrupted = codes.copy()
        corrupted[1] ^= 1 << 7  # single: correctable
        corrupted[2] ^= (1 << 3) | (1 << 30)  # double: detected
        fixed, data, status = secded_scrub(corrupted)
        assert list(status) == [STATUS_CLEAN, STATUS_CORRECTED, STATUS_DOUBLE]
        assert fixed[0] == codes[0] and fixed[1] == codes[1]
        assert data[0] == 10 and data[1] == 20


def test_encode_masks_to_32_bits():
    # hardware-like truncation: only the low 32 bits are stored
    assert secded_encode(1 << DATA_BITS) == secded_encode(0)
    assert secded_encode((1 << DATA_BITS) | 5) == secded_encode(5)
