"""Larger combinational EHW targets for the 32-bit scaled core (Fig. 6).

The 16-bit :class:`~repro.ehw.fabric.VirtualFabric` caps evolvable
functions at 4 inputs; the paper's Sec. III-D dual-core composition
doubles the chromosome to 32 bits without re-synthesis, and this module
supplies the matching substrate: :class:`WideFabric`, an 8-cell, 6-input
virtual reconfigurable block whose configuration is exactly one 32-bit
chromosome (8 cells x one 4-bit nibble).  Targets worth that genotype:

* ``mux6``  — the 6-input multiplexer ``out = d[s1s0]`` (2 select +
  4 data lines), the classic EHW benchmark;
* ``parity6`` — 6-input odd parity, the hardest 6-input function for
  two-level logic and a staple of the EHW literature.

Fitness is truth-table agreement over all 64 input combinations, each
match worth :data:`ROW_SCORE` — integer-exact, so zoo goldens pin it
bit-for-bit.  :data:`FITNESS32_REGISTRY` exposes the targets as plain
``fitness32(chromosome) -> int`` callables for
:class:`~repro.core.scaling.DualCoreGA32`, addressable from a
:class:`~repro.service.jobs.GARequest` via ``substrate="dual32"``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: Fitness per matching truth-table row: 64 rows x 1023 = 65,472, inside
#: the 16-bit ``fit_value`` range Core1 stores.
ROW_SCORE = 1023

N_INPUTS = 6
N_CELLS = 8
N_ROWS = 1 << N_INPUTS

#: Two-input cell functions, selected by the low 2 bits of each nibble
#: (the same palette as the 16-bit fabric: AND / OR / XOR / NAND).
_FUNCS = ["and", "or", "xor", "nand"]

#: Input-pair choices per cell, selected by the high 2 bits.  Sources 0-5
#: are the primary inputs; 6.. are earlier cells, giving up to four logic
#: levels by cell 7 (the output cell).
_PAIR_CHOICES: list[list[tuple[int, int]]] = [
    [(0, 1), (2, 3), (4, 5), (0, 5)],          # cell 0
    [(0, 2), (1, 3), (2, 4), (3, 5)],          # cell 1
    [(0, 4), (1, 5), (0, 3), (1, 2)],          # cell 2
    [(6, 7), (6, 8), (7, 8), (2, 6)],          # cell 3
    [(6, 8), (7, 6), (8, 5), (3, 7)],          # cell 4
    [(9, 10), (9, 6), (10, 7), (4, 9)],        # cell 5
    [(9, 11), (10, 11), (11, 8), (5, 10)],     # cell 6
    [(11, 12), (10, 12), (9, 12), (8, 12)],    # cell 7 (output)
]


def _cell_out(fsel: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.select(
        [fsel == 0, fsel == 1, fsel == 2, fsel == 3],
        [a & b, a | b, a ^ b, 1 - (a & b)],
    )


def truth_tables(configs: np.ndarray) -> np.ndarray:
    """64-bit truth tables of many 32-bit configurations at once.

    Bit ``i`` of a table is the fabric output for input combination ``i``
    (input ``k`` = bit ``k`` of ``i``).
    """
    configs = np.asarray(configs).astype(np.int64)
    n = configs.shape
    tables = np.zeros(n, dtype=np.uint64)
    for row in range(N_ROWS):
        sources = [
            np.full(n, (row >> k) & 1, dtype=np.int64) for k in range(N_INPUTS)
        ]
        for cell in range(N_CELLS):
            nibble = (configs >> (4 * cell)) & 0xF
            fsel = nibble & 0b11
            psel = (nibble >> 2) & 0b11
            a = np.zeros(n, dtype=np.int64)
            b = np.zeros(n, dtype=np.int64)
            for p, pair in enumerate(_PAIR_CHOICES[cell]):
                mask = psel == p
                a[mask] = sources[pair[0]][mask]
                b[mask] = sources[pair[1]][mask]
            sources.append(_cell_out(fsel, a, b))
        tables |= sources[-1].astype(np.uint64) << np.uint64(row)
    return tables


def _target_table(fn: Callable[..., int]) -> int:
    table = 0
    for row in range(N_ROWS):
        bits = tuple((row >> k) & 1 for k in range(N_INPUTS))
        table |= (fn(*bits) & 1) << row
    return table


#: Target functions as 64-row truth tables.  mux6 input order:
#: (s0, s1, d0, d1, d2, d3); parity6 is odd parity over all six lines.
TARGET_TABLES: dict[str, int] = {
    "mux6": _target_table(
        lambda s0, s1, d0, d1, d2, d3: (d0, d1, d2, d3)[(s1 << 1) | s0]
    ),
    "parity6": _target_table(lambda *bits: sum(bits) & 1),
}

PERFECT_SCORE = N_ROWS * ROW_SCORE


def _popcount64(words: np.ndarray) -> np.ndarray:
    counts = np.zeros(words.shape, dtype=np.int64)
    for k in range(N_ROWS):
        counts += ((words >> np.uint64(k)) & np.uint64(1)).astype(np.int64)
    return counts


def evaluate32_array(target: str, configs: np.ndarray) -> np.ndarray:
    """Vectorised fitness of 32-bit configurations against a target."""
    tables = truth_tables(configs)
    mismatches = _popcount64(tables ^ np.uint64(TARGET_TABLES[target]))
    return (N_ROWS - mismatches) * ROW_SCORE


def _make_fitness32(target: str) -> Callable[[int], int]:
    def fitness32(chromosome: int) -> int:
        value = evaluate32_array(target, np.asarray([chromosome & 0xFFFFFFFF]))
        return int(value[0])

    fitness32.__name__ = f"fabric32_{target}"
    return fitness32


#: 32-bit objectives by name, for ``GARequest(substrate="dual32")`` and
#: :class:`~repro.core.scaling.DualCoreGA32` directly.
FITNESS32_REGISTRY: dict[str, Callable[[int], int]] = {
    f"fabric32_{target}": _make_fitness32(target) for target in TARGET_TABLES
}
