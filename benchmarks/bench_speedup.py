"""Sec. IV-C — hardware vs. software runtime comparison.

Two measurements:

1. The *modelled* comparison of the paper: PowerPC-priced software GA vs.
   cycle-accurate hardware cycles at 50 MHz (prints both the measured
   speedup of this leaner core and the paper-equivalent 5.16x pricing).
2. A real wall-clock benchmark pair: the scalar software GA vs. the
   vectorised behavioural engine, the Python-world analogue of the paper's
   "hardware acceleration of the same algorithm".
"""

import pytest

from conftest import print_table
from repro.baselines.software_ga import SoftwareGA
from repro.core.behavioral import BehavioralGA
from repro.experiments.speedup import paper_speedup_params, run_speedup
from repro.fitness import MBF6_2


@pytest.mark.benchmark(group="speedup")
def test_speedup_model(benchmark):
    report = benchmark.pedantic(run_speedup, rounds=1, iterations=1)
    print_table("Sec. IV-C runtime comparison (mean of 6 runs)", report["rows"])
    print(
        f"software {report['software_ms']:.2f} ms "
        f"(paper {report['paper_software_ms']:.2f} ms), "
        f"hardware {report['hardware_ms']:.3f} ms, "
        f"speedup measured {report['speedup_measured']:.1f}x, "
        f"paper-equivalent {report['speedup_paper_equivalent']:.2f}x "
        f"(paper {report['paper_speedup']}x)"
    )
    # Shape targets: software lands on the paper's measurement, hardware
    # wins by at least the paper's factor, and the paper-equivalent pricing
    # reproduces ~5.16x.
    assert report["software_ms"] == pytest.approx(37.615, rel=0.2)
    assert report["speedup_measured"] > 5.16
    assert report["speedup_paper_equivalent"] == pytest.approx(5.16, rel=0.2)


@pytest.mark.benchmark(group="speedup-wallclock")
def test_wallclock_software_ga(benchmark):
    params = paper_speedup_params()
    fn = MBF6_2()
    fn.table()  # exclude one-time table build from timing
    result = benchmark(lambda: SoftwareGA(params, fn).run())
    assert result.best_fitness > 7000


@pytest.mark.benchmark(group="speedup-wallclock")
def test_wallclock_behavioral_engine(benchmark):
    params = paper_speedup_params()
    fn = MBF6_2()
    fn.table()
    result = benchmark(lambda: BehavioralGA(params, fn).run())
    assert result.best_fitness > 7000
