"""RNG quality metrics (Sec. II-C).

"A high-quality RNG is generally characterized by a long period, uniformly
distributed random numbers, absence of correlations between consecutive
numbers, and structural properties."  This module measures exactly those
four properties for any :class:`~repro.rng.base.RandomSource`, so the
ablation benchmarks can tie RNG quality to GA convergence the way the
Meysenburg/Foster and Cantu-Paz studies did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from repro.rng.base import RandomSource


@dataclass(frozen=True)
class RNGReport:
    """Summary metrics over a sampled stream."""

    name: str
    period: int
    chi2_pvalue: float
    serial_correlation: float
    bit_balance: float  # mean fraction of ones per bit position (ideal 0.5)
    worst_bit_bias: float  # max |fraction - 0.5| over bit positions

    def is_good(
        self,
        min_period: int = 60000,
        min_p: float = 1e-4,
        max_serial: float = 0.05,
        max_bit_bias: float = 0.05,
    ) -> bool:
        """Apply the conventional acceptance thresholds."""
        return (
            self.period >= min_period
            and self.chi2_pvalue >= min_p
            and abs(self.serial_correlation) <= max_serial
            and self.worst_bit_bias <= max_bit_bias
        )


def measure_period(source: RandomSource, limit: int = 1 << 17) -> int:
    """Steps until the full generator state first repeats (capped at
    ``limit``).  Operates on a deep copy, leaving ``source`` untouched."""
    import copy

    probe = copy.deepcopy(source)
    seen = {probe.state_key()}
    steps = 0
    while steps < limit:
        probe.next_word()
        steps += 1
        key = probe.state_key()
        if key in seen:
            return steps
        seen.add(key)
    return limit


def chi_square_uniformity(words: np.ndarray, buckets: int = 64) -> float:
    """P-value of the chi-square test of uniformity over equal buckets."""
    counts, _ = np.histogram(words, bins=buckets, range=(0, 65536))
    expected = len(words) / buckets
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    return float(sstats.chi2.sf(chi2, buckets - 1))


def serial_correlation(words: np.ndarray) -> float:
    """Lag-1 Pearson correlation between consecutive words."""
    a = words[:-1].astype(np.float64)
    b = words[1:].astype(np.float64)
    if a.std() == 0 or b.std() == 0:
        return 1.0
    return float(np.corrcoef(a, b)[0, 1])


def bit_balance(words: np.ndarray, width: int = 16) -> tuple[float, float]:
    """(mean ones-fraction, worst |bias|) across bit positions."""
    bits = (words[:, None] >> np.arange(width)[None, :]) & 1
    fractions = bits.mean(axis=0)
    return float(fractions.mean()), float(np.abs(fractions - 0.5).max())


def runs_test(words: np.ndarray) -> float:
    """Wald-Wolfowitz runs test on the above/below-median sequence.

    Returns the two-sided p-value; a stream with too few or too many runs
    (clumping or alternation) scores near zero.
    """
    median = np.median(words)
    seq = (words > median).astype(np.int8)
    # drop exact-median samples to keep the two classes clean
    seq = seq[words != median] if np.any(words == median) else seq
    n1 = int(seq.sum())
    n2 = len(seq) - n1
    if n1 == 0 or n2 == 0:
        return 0.0
    runs = 1 + int(np.count_nonzero(seq[1:] != seq[:-1]))
    expected = 1 + 2 * n1 * n2 / (n1 + n2)
    variance = (
        2 * n1 * n2 * (2 * n1 * n2 - n1 - n2)
        / ((n1 + n2) ** 2 * (n1 + n2 - 1))
    )
    if variance <= 0:
        return 0.0
    z = (runs - expected) / variance**0.5
    return float(2 * sstats.norm.sf(abs(z)))


def gap_test(words: np.ndarray, lo: int = 0, hi: int = 16384, max_gap: int = 30) -> float:
    """Knuth's gap test: distribution of gaps between visits to [lo, hi).

    Returns the chi-square p-value against the geometric expectation.
    """
    in_range = (words >= lo) & (words < hi)
    positions = np.flatnonzero(in_range)
    if len(positions) < 20:
        return 0.0
    gaps = np.diff(positions) - 1
    gaps = np.minimum(gaps, max_gap)
    p = (hi - lo) / 65536.0
    expected_probs = np.array(
        [p * (1 - p) ** g for g in range(max_gap)] + [(1 - p) ** max_gap]
    )
    counts = np.bincount(gaps, minlength=max_gap + 1)[: max_gap + 1]
    expected = expected_probs * len(gaps)
    keep = expected >= 1.0
    chi2 = float(((counts[keep] - expected[keep]) ** 2 / expected[keep]).sum())
    return float(sstats.chi2.sf(chi2, int(keep.sum()) - 1))


def evaluate(source: RandomSource, samples: int = 20000) -> RNGReport:
    """Full quality report for a generator (non-destructive on seed)."""
    seed = source.seed
    period = measure_period(source)
    source.reseed(seed)
    words = source.block(samples).astype(np.int64)
    source.reseed(seed)
    mean_frac, worst = bit_balance(words)
    return RNGReport(
        name=type(source).__name__,
        period=period,
        chi2_pvalue=chi_square_uniformity(words),
        serial_correlation=serial_correlation(words),
        bit_balance=mean_frac,
        worst_bit_bias=worst,
    )
