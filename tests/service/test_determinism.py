"""Scheduler determinism: serving must never change a job's numbers.

The acceptance property of the serving layer: a job's result — best
individual, best fitness, evaluation count, and the full per-generation
trace — is bit-identical to a solo serial
:class:`~repro.core.behavioral.BehavioralGA` run of the same seed and
parameters, for every arrival order, batch width, admission interval, and
worker count.  Scheduling may only move wall-clock time.
"""

import random
import time

import pytest

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.service import BatchPolicy, GARequest, GAService

#: a deliberately awkward job mix: one pop-16 batching class plus a pop-24
#: straggler, generation counts that retire at different chunk boundaries,
#: mixed fitness slots and thresholds, distinct seeds
JOBS = [
    GARequest(
        params=GAParameters(
            n_generations=gens, population_size=pop,
            crossover_threshold=xt, mutation_threshold=mt, rng_seed=seed,
        ),
        fitness_name=fn,
    )
    for seed, gens, pop, xt, mt, fn in [
        (45890, 33, 16, 10, 1, "mBF6_2"),
        (10593, 12, 16, 13, 2, "mBF6_2"),
        (1567, 20, 16, 10, 1, "mShubert2D"),
        (777, 33, 16, 15, 0, "F3"),
        (4242, 5, 16, 10, 1, "mBF7_2"),
        (2961, 27, 16, 12, 1, "mBF6_2"),
        (31337, 33, 24, 10, 1, "mShubert2D"),
        (8081, 18, 16, 0, 15, "F2"),
    ]
]


def solo_outcome(request: GARequest):
    result = BehavioralGA(
        request.params, by_name(request.fitness_name), record_members=False
    ).run()
    return (
        result.best_individual,
        result.best_fitness,
        result.evaluations,
        [
            (g.generation, g.best_fitness, g.best_individual, g.fitness_sum)
            for g in result.history
        ],
    )


BASELINE = {request.params.rng_seed: solo_outcome(request) for request in JOBS}


def service_outcomes(jobs, workers, mode="thread", **policy_kw):
    policy_kw.setdefault("max_wait_s", 0.01)
    with GAService(
        workers=workers, mode=mode, policy=BatchPolicy(**policy_kw)
    ) as service:
        results = service.run_all(list(jobs), timeout=120)
    return {
        request.params.rng_seed: (
            result.best_individual,
            result.best_fitness,
            result.evaluations,
            [
                (g.generation, g.best_fitness, g.best_individual,
                 g.fitness_sum)
                for g in result.history
            ],
        )
        for request, result in zip(jobs, results)
    }


@pytest.mark.parametrize(
    "label,workers,policy_kw,order",
    [
        ("fifo-1worker", 1, dict(max_batch=4, admit_interval=8), None),
        ("reversed-3workers", 3, dict(max_batch=2, admit_interval=5), "reverse"),
        ("shuffled-2workers", 2, dict(max_batch=8, admit_interval=16), 0),
        ("solo-slabs", 1, dict(max_batch=1, admit_interval=7), 1),
        ("odd-chunk", 2, dict(max_batch=32, admit_interval=3), 2),
    ],
)
def test_results_bit_identical_across_schedules(label, workers, policy_kw, order):
    jobs = list(JOBS)
    if order == "reverse":
        jobs.reverse()
    elif order is not None:
        random.Random(order).shuffle(jobs)
    outcomes = service_outcomes(jobs, workers, **policy_kw)
    assert outcomes == BASELINE, f"schedule {label} changed job results"


def test_staggered_arrivals_join_running_slabs_bit_identically():
    # submit half the jobs, wait until the first chunks are in flight,
    # then submit the rest — late admission must not change any result
    policy = BatchPolicy(max_batch=8, max_wait_s=0.005, admit_interval=4)
    with GAService(workers=2, mode="thread", policy=policy) as service:
        first = [service.submit(request) for request in JOBS[:4]]
        deadline = time.monotonic() + 10
        while service.metrics.chunks == 0 and time.monotonic() < deadline:
            time.sleep(0.002)
        second = [service.submit(request) for request in JOBS[4:]]
        results = [h.result(timeout=120) for h in first + second]
    outcomes = {
        request.params.rng_seed: (
            result.best_individual, result.best_fitness, result.evaluations,
            [
                (g.generation, g.best_fitness, g.best_individual,
                 g.fitness_sum)
                for g in result.history
            ],
        )
        for request, result in zip(JOBS, results)
    }
    assert outcomes == BASELINE


def test_process_pool_matches_thread_pool():
    outcomes = service_outcomes(
        JOBS[:4], workers=2, mode="process", max_batch=4, admit_interval=8
    )
    expected = {
        request.params.rng_seed: BASELINE[request.params.rng_seed]
        for request in JOBS[:4]
    }
    assert outcomes == expected
