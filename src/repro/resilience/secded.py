"""Hamming SECDED(39,32) — the error-correcting code protecting GA memory.

The GA memory packs ``{fitness[31:16], candidate[15:0]}`` into 32-bit words
(Sec. III-B.7).  In the space-deployment context of Sec. II-D a single-event
upset can flip any stored bit, so the hardened memory variant widens each
word to a 39-bit codeword: 32 data bits + 6 Hamming parity bits + 1 overall
parity bit — the standard single-error-correcting, double-error-detecting
arrangement used by radiation-tolerant block-RAM wrappers.

Layout (bit index inside the codeword):

* position 0 — overall parity (makes the whole 39-bit word even-parity);
* positions 1, 2, 4, 8, 16, 32 — the six Hamming parity bits;
* the remaining 32 positions of 1..38 — data bits, in ascending order
  (data bit 0 lands at position 3).

Decoding computes the 6-bit syndrome plus the overall-parity check:

=========  ==============  ====================================
syndrome   overall parity  verdict
=========  ==============  ====================================
0          even            clean (``STATUS_CLEAN``)
any        odd             single-bit error at position
                           ``syndrome`` — corrected
                           (``STATUS_CORRECTED``)
nonzero    even            double-bit error — detected,
                           uncorrectable (``STATUS_DOUBLE``)
=========  ==============  ====================================

A syndrome pointing outside the 39 valid positions (only possible for 3+
upsets) is reported as ``STATUS_DOUBLE`` as well.  Everything is vectorised
over int64 numpy arrays so the batched replica engine can scrub whole
``(replica, member)`` populations in one pass.
"""

from __future__ import annotations

import numpy as np

#: Total codeword width: 32 data + 6 Hamming parity + 1 overall parity.
CODEWORD_BITS = 39
#: Payload width (one packed ``{fitness, candidate}`` GA-memory word).
DATA_BITS = 32

#: Decode/scrub verdicts.
STATUS_CLEAN = 0
STATUS_CORRECTED = 1
STATUS_DOUBLE = 2

#: Codeword positions of the six Hamming parity bits.
_PARITY_POS = tuple(1 << i for i in range(6))
#: Codeword positions of the 32 data bits (1..38 minus the parity positions).
DATA_POSITIONS = tuple(
    p for p in range(1, CODEWORD_BITS) if p not in _PARITY_POS
)
assert len(DATA_POSITIONS) == DATA_BITS

#: ``_GROUP_MASK[i]`` selects every codeword position whose index has bit
#: ``i`` set (parity bit ``i`` checks even parity over that group).
_GROUP_MASK = tuple(
    sum(1 << p for p in range(1, CODEWORD_BITS) if (p >> i) & 1)
    for i in range(6)
)

_CODE_MASK = (1 << CODEWORD_BITS) - 1
_DATA_MASK = (1 << DATA_BITS) - 1


def _popcount(values: np.ndarray) -> np.ndarray:
    """Per-element population count of a non-negative int64 array."""
    return np.bitwise_count(values).astype(np.int64)


def secded_encode(words: np.ndarray | int) -> np.ndarray | int:
    """Encode 32-bit data words into 39-bit SECDED codewords.

    Accepts a scalar or any-shaped integer array; returns the same shape.
    """
    scalar = np.isscalar(words)
    data = np.asarray(words, dtype=np.int64) & _DATA_MASK
    code = np.zeros_like(data)
    for k, pos in enumerate(DATA_POSITIONS):
        code |= ((data >> k) & 1) << pos
    for i, mask in enumerate(_GROUP_MASK):
        code |= (_popcount(code & mask) & 1) << (1 << i)
    code |= _popcount(code) & 1  # overall parity at position 0
    return int(code) if scalar else code


def secded_extract(codes: np.ndarray | int) -> np.ndarray | int:
    """Pull the 32 data bits out of codewords (no checking or correction)."""
    scalar = np.isscalar(codes)
    code = np.asarray(codes, dtype=np.int64)
    data = np.zeros_like(code)
    for k, pos in enumerate(DATA_POSITIONS):
        data |= ((code >> pos) & 1) << k
    return int(data) if scalar else data


def secded_scrub(codes: np.ndarray | int):
    """Check/correct codewords; the scrubber and read-path core routine.

    Returns ``(fixed_codes, data, status)`` where single-bit errors have
    been corrected in ``fixed_codes`` (and ``data`` is extracted from the
    corrected word), and ``status`` is per-element ``STATUS_CLEAN`` /
    ``STATUS_CORRECTED`` / ``STATUS_DOUBLE``.  Double errors are left as
    found — the caller decides between rollback and acceptance.
    """
    scalar = np.isscalar(codes)
    code = np.asarray(codes, dtype=np.int64) & _CODE_MASK
    syndrome = np.zeros_like(code)
    for i, mask in enumerate(_GROUP_MASK):
        syndrome |= (_popcount(code & mask) & 1) << i
    odd_overall = (_popcount(code) & 1).astype(bool)

    status = np.full(code.shape, STATUS_CLEAN, dtype=np.int64)
    correctable = odd_overall & (syndrome < CODEWORD_BITS)
    status[correctable] = STATUS_CORRECTED
    status[odd_overall & ~correctable] = STATUS_DOUBLE
    status[~odd_overall & (syndrome != 0)] = STATUS_DOUBLE

    fixed = np.where(correctable, code ^ (np.int64(1) << syndrome), code)
    data = secded_extract(fixed)
    if scalar:
        return int(fixed), int(data), int(status)
    return fixed, data, status


def secded_decode(codes: np.ndarray | int):
    """Decode codewords to ``(data, status)`` (correcting single errors)."""
    _fixed, data, status = secded_scrub(codes)
    return data, status
