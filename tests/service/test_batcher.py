"""Slab/chunk mechanics and the worker-level execution contract."""

import pytest

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.service.batcher import BatchPolicy, JobRecord, Slab, compat_key
from repro.service.jobs import GARequest, JobHandle, params_to_dict
from repro.service.workers import run_slab_chunk


def params(**overrides) -> GAParameters:
    base = dict(
        n_generations=10,
        population_size=12,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


def record(seq=0, **request_kw) -> JobRecord:
    request_kw.setdefault("params", params())
    request = GARequest(**request_kw)
    return JobRecord(
        job_id=seq, request=request,
        handle=JobHandle(seq, request, 0.0), submitted_at=float(seq), seq=seq,
    )


class TestBatchPolicy:
    @pytest.mark.parametrize(
        "kw",
        [
            {"max_batch": 0},
            {"max_wait_s": -1.0},
            {"admit_interval": 0},
            {"max_pending": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ValueError):
            BatchPolicy(**kw)


class TestCompatKey:
    def test_same_pop_batches_regardless_of_other_params(self):
        a = record(0, params=params(rng_seed=1, n_generations=5))
        b = record(1, params=params(rng_seed=2, crossover_threshold=15),
                   fitness_name="mShubert2D")
        assert compat_key(a) == compat_key(b)

    def test_different_pop_separates(self):
        a = record(0)
        b = record(1, params=params(population_size=16))
        assert compat_key(a) != compat_key(b)

    def test_hardened_jobs_never_share_a_key(self):
        a = record(0, protection="hardened")
        b = record(1, protection="hardened")
        assert compat_key(a) != compat_key(b)
        assert compat_key(a)[0] == "hardened"


class TestSlab:
    def test_chunk_clamps_to_shortest_remaining_job(self):
        policy = BatchPolicy(admit_interval=16)
        slab = Slab([record(0, params=params(n_generations=40)),
                     record(1, params=params(n_generations=7))], policy)
        assert slab.next_chunk_gens() == 7

    def test_admit_respects_capacity_accounting(self):
        policy = BatchPolicy(max_batch=3)
        slab = Slab([record(0)], policy)
        assert slab.capacity_left == 2
        slab.admit([record(1), record(2)])
        assert slab.capacity_left == 0

    def test_hardened_slab_is_solo_and_closed(self):
        policy = BatchPolicy()
        with pytest.raises(ValueError):
            Slab([record(0, protection="secded"),
                  record(1, protection="secded")], policy)
        slab = Slab([record(0, protection="secded")], policy)
        assert slab.capacity_left == 0
        with pytest.raises(ValueError):
            slab.admit([record(1)])
        # hardened runs to completion in one chunk, ignoring admit_interval
        assert slab.next_chunk_gens() == 10


class TestRunSlabChunk:
    def test_fresh_then_resumed_chunks_match_solo_serial(self):
        p = params(n_generations=13, rng_seed=10593)
        fn = by_name("mBF6_2")
        solo = BehavioralGA(p, fn, record_members=False).run()

        entry = {
            "job_id": 0, "params": params_to_dict(p), "fitness": "mBF6_2",
            "population": None, "rng_state": None, "record_stats": True,
        }
        first = run_slab_chunk(
            {"chunk_gens": 6, "entries": [entry], "protection": None}
        )["entries"][0]
        second = run_slab_chunk(
            {
                "chunk_gens": 7,
                "entries": [
                    {
                        **entry,
                        "population": first["population"],
                        "rng_state": first["rng_state"],
                    }
                ],
                "protection": None,
            }
        )["entries"][0]

        spliced = first["stats"] + second["stats"][1:]
        want = [
            (g.best_fitness, g.best_individual, g.fitness_sum)
            for g in solo.history
        ]
        assert spliced == want
        assert second["best_individual"] == solo.best_individual
        assert second["best_fitness"] == solo.best_fitness
        assert (
            first["evaluations"] + second["evaluations"] == solo.evaluations
        )

    def test_record_stats_off_drops_trace_but_keeps_result(self):
        p = params(n_generations=4)
        out = run_slab_chunk(
            {
                "chunk_gens": 4,
                "entries": [
                    {
                        "job_id": 0, "params": params_to_dict(p),
                        "fitness": "F3", "population": None,
                        "rng_state": None, "record_stats": False,
                    }
                ],
                "protection": None,
            }
        )["entries"][0]
        assert out["stats"] == []
        assert out["best_fitness"] >= 0
