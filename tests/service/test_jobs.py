"""Request/result types: validation, wire round trips, handle semantics."""

import pytest

from repro.core.params import GAParameters
from repro.core.stats import GenerationStats
from repro.service.jobs import GARequest, JobHandle, JobResult


def params(**overrides) -> GAParameters:
    base = dict(
        n_generations=8,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestGARequest:
    def test_unknown_fitness_slot_rejected(self):
        with pytest.raises(ValueError, match="unknown fitness slot"):
            GARequest(params=params(), fitness_name="nope")

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            GARequest(params=params(), deadline_s=0)

    def test_unknown_protection_rejected(self):
        with pytest.raises(ValueError, match="protection preset"):
            GARequest(params=params(), protection="tinfoil")

    def test_negative_upset_rate_rejected(self):
        with pytest.raises(ValueError, match="upset_rate"):
            GARequest(params=params(), upset_rate=-1e-4)

    def test_wire_round_trip(self):
        request = GARequest(
            params=params(rng_seed=0x2961),
            fitness_name="mShubert2D",
            priority=-2,
            deadline_s=1.5,
            record_trace=False,
            protection="hardened",
            upset_rate=5e-4,
            campaign_seed=7,
        )
        assert GARequest.from_dict(request.to_dict()) == request


class TestJobResult:
    def test_wire_round_trip_rebuilds_history(self):
        result = JobResult(
            job_id=3,
            best_individual=65521,
            best_fitness=8183,
            evaluations=136,
            fitness_name="mBF6_2",
            params=params(),
            history=[
                GenerationStats(
                    generation=g, best_fitness=100 + g, best_individual=g,
                    fitness_sum=1000 + g, population_size=16,
                )
                for g in range(3)
            ],
            latency_s=0.25,
            wait_s=0.01,
            n_chunks=2,
            deadline_missed=True,
        )
        back = JobResult.from_dict(result.to_dict())
        assert back == result
        assert back.best_series() == [100, 101, 102]


class TestJobHandle:
    def test_result_times_out_until_fulfilled(self):
        handle = JobHandle(0, GARequest(params=params()), 0.0)
        assert not handle.done()
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.01)
        handle._fail(RuntimeError("boom"))
        assert handle.done()
        with pytest.raises(RuntimeError, match="boom"):
            handle.result(timeout=0.01)
