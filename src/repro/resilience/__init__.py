"""Soft-error resilience layer: SEU injection, hardening, campaigns.

The space-deployment story of Sec. II-D made concrete: deterministic
single-event-upset injection into both GA models
(:mod:`repro.resilience.seu`), a protection stack — SECDED(39,32) memory
with scrubbing, FEM handshake watchdog with mux failover, elite
re-evaluation guard, checkpointed rollback (:mod:`repro.resilience.harden`)
— and a campaign runner sweeping upset rates across protection configs
over batched replicas (:mod:`repro.resilience.campaign`).
"""

from repro.resilience.campaign import (
    REPORT_COLUMNS,
    ResilienceCampaign,
    report_rows,
    run_campaign,
)
from repro.resilience.harden import (
    HARDENED,
    PROTECTION_PRESETS,
    UNPROTECTED,
    CycleResilienceOptions,
    FEMWatchdog,
    MemoryScrubber,
    ProtectionConfig,
    ResilienceHarness,
    SECDEDGAMemory,
)
from repro.resilience.secded import (
    CODEWORD_BITS,
    DATA_BITS,
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DOUBLE,
    secded_decode,
    secded_encode,
    secded_extract,
    secded_scrub,
)
from repro.resilience.seu import (
    CORE_REGISTER_TARGETS,
    FSM_STATE_SPACE,
    CycleSEUEvent,
    CycleSEUInjector,
    SEUInjector,
    UpsetRates,
)

__all__ = [
    "ResilienceCampaign",
    "run_campaign",
    "report_rows",
    "REPORT_COLUMNS",
    "ProtectionConfig",
    "ResilienceHarness",
    "CycleResilienceOptions",
    "SECDEDGAMemory",
    "MemoryScrubber",
    "FEMWatchdog",
    "PROTECTION_PRESETS",
    "UNPROTECTED",
    "HARDENED",
    "SEUInjector",
    "UpsetRates",
    "CycleSEUInjector",
    "CycleSEUEvent",
    "CORE_REGISTER_TARGETS",
    "FSM_STATE_SPACE",
    "secded_encode",
    "secded_decode",
    "secded_extract",
    "secded_scrub",
    "CODEWORD_BITS",
    "DATA_BITS",
    "STATUS_CLEAN",
    "STATUS_CORRECTED",
    "STATUS_DOUBLE",
]
