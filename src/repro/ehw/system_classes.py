"""The four intrinsic-EHW system classes of Sec. II-D as latency models.

Lambert et al.'s taxonomy places the reconfigurable hardware and the
evolutionary algorithm on the same chip (complete), different chips
(multichip), different boards (multiboard), or with the EA on a PC.  What
changes between the classes is the *communication latency* of each fitness
evaluation: configuring the fabric with the candidate and reading the
response back crosses intra-chip wires, inter-chip wires, inter-board
wires, or a PC link.

:class:`LatencyFEM` wraps any fitness function behind the GA handshake with
a programmable round-trip delay (in GA-clock cycles);
:func:`run_class_comparison` runs the *same* cycle-accurate GA under each
class and a sweep of intrinsic evaluation times, reproducing the section's
claims: complete < multichip < multiboard < PC in runtime, with the gap
collapsing once fitness-evaluation time dominates communication time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import GAParameters
from repro.core.system import GASystem
from repro.fitness.base import FitnessFunction
from repro.fitness.mux import FEMInterface
from repro.hdl.component import Component


@dataclass(frozen=True)
class EHWClass:
    """One intrinsic-EHW system class (latencies in 50 MHz GA cycles)."""

    name: str
    #: cycles to ship a candidate configuration to the fabric
    config_latency: int
    #: cycles to read the measured fitness back
    readback_latency: int

    @property
    def round_trip(self) -> int:
        return self.config_latency + self.readback_latency


#: The Sec. II-D taxonomy with representative wire/link latencies.
EHW_CLASSES: list[EHWClass] = [
    EHWClass("complete (same chip)", config_latency=1, readback_latency=1),
    EHWClass("multichip (inter-chip)", config_latency=8, readback_latency=8),
    EHWClass("multiboard (inter-board)", config_latency=40, readback_latency=40),
    EHWClass("PC-based (host link)", config_latency=600, readback_latency=600),
]


class LatencyFEM(Component):
    """Fitness module with a programmable communication + evaluation delay.

    Models the full intrinsic-EHW evaluation path: candidate shipping
    (``config_latency``), the intrinsic measurement itself
    (``evaluation_cycles`` — circuit settling/measurement time), and the
    fitness readback (``readback_latency``).
    """

    def __init__(
        self,
        name: str,
        iface: FEMInterface,
        fn: FitnessFunction,
        ehw_class: EHWClass,
        evaluation_cycles: int = 1,
    ):
        super().__init__(name)
        self.iface = iface
        self.table = fn.table()
        self.ehw_class = ehw_class
        self.evaluation_cycles = max(1, evaluation_cycles)
        self.state = "IDLE"
        self.wait = 0
        self.latched = 0
        self.evaluations = 0

    def clock(self) -> None:
        io = self.iface
        if self.state == "IDLE":
            if io.fit_request.value:
                self.set_state(
                    state="BUSY",
                    latched=io.candidate.value,
                    wait=self.ehw_class.round_trip + self.evaluation_cycles,
                )
        elif self.state == "BUSY":
            if self.wait > 1:
                self.set_state(wait=self.wait - 1)
            else:
                self.drive(io.fit_value, int(self.table[self.latched]))
                self.drive(io.fit_valid, 1)
                self.set_state(state="HOLD", evaluations=self.evaluations + 1)
        elif self.state == "HOLD":
            if not io.fit_request.value:
                self.drive(io.fit_valid, 0)
                self.set_state(state="IDLE")

    def reset(self) -> None:
        super().reset()
        self.state = "IDLE"
        self.wait = 0
        self.evaluations = 0
        self.iface.fit_valid.reset()
        self.iface.fit_value.reset()


def run_class_comparison(
    fn: FitnessFunction,
    params: GAParameters | None = None,
    evaluation_cycles: tuple[int, ...] = (1, 1000),
) -> list[dict]:
    """Run the same GA under every EHW class and evaluation-time regime.

    Returns rows with total cycles and runtime; within one
    ``evaluation_cycles`` the classes order complete < multichip <
    multiboard < PC, and the relative spread shrinks as evaluation time
    grows (the Sec. II-D amortisation argument).
    """
    params = params or GAParameters(
        n_generations=4,
        population_size=8,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    rows = []
    for eval_cycles in evaluation_cycles:
        for ehw_class in EHW_CLASSES:
            system = GASystem(
                params,
                fn,
                fem_factory=lambda name, iface, f, c=ehw_class, e=eval_cycles: (
                    LatencyFEM(name, iface, f, c, e)
                ),
            )
            result = system.run()
            rows.append(
                {
                    "class": ehw_class.name,
                    "eval_cycles": eval_cycles,
                    "round_trip": ehw_class.round_trip,
                    "total_cycles": result.cycles,
                    "runtime_ms": round(1e3 * result.runtime_seconds, 3),
                    "best": result.best_fitness,
                }
            )
    return rows
