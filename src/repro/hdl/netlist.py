"""Structural gate-level netlists: construction, simulation, statistics.

A :class:`Netlist` is a flat graph of two-input gates and D flip-flops over
integer net ids, with named multi-bit input/output ports.  It supports:

* builder-style construction (used by :mod:`repro.hdl.rtlib` generators);
* clocked simulation (``step``) with synchronous flops, used to check
  gate-level/RT-level equivalence the way the paper checked its flattened
  Verilog against the RT-level VHDL with NC-Verilog;
* scan-chain aware simulation (see :mod:`repro.hdl.scan`);
* gate/flop statistics consumed by the FPGA resource estimator.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.hdl.gates import DFF, Gate, GateType


class NetlistError(RuntimeError):
    """Structural problem in a netlist (multiple drivers, comb. loop, ...)."""


class Netlist:
    """A flat structural netlist over Boolean nets."""

    def __init__(self, name: str):
        self.name = name
        self.net_count = 0
        self.net_names: dict[int, str] = {}
        self.inputs: dict[str, list[int]] = {}
        self.outputs: dict[str, list[int]] = {}
        self.gates: list[Gate] = []
        self.dffs: list[DFF] = []
        self._driven: set[int] = set()
        self._order: list[Gate] | None = None
        self.scan_ports: tuple[int, int, int] | None = None  # (test, scanin, scanout)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def net(self, name: str = "") -> int:
        """Allocate a fresh net id."""
        nid = self.net_count
        self.net_count += 1
        if name:
            self.net_names[nid] = name
        return nid

    def add_input(self, name: str, width: int = 1) -> list[int]:
        """Declare a primary input bus; returns its nets, LSB first."""
        if name in self.inputs or name in self.outputs:
            raise NetlistError(f"duplicate port {name!r}")
        nets = [self.net(f"{name}[{i}]") for i in range(width)]
        self.inputs[name] = nets
        self._driven.update(nets)
        return nets

    def add_output(self, name: str, nets: Sequence[int]) -> None:
        """Declare a primary output bus over existing nets, LSB first."""
        if name in self.inputs or name in self.outputs:
            raise NetlistError(f"duplicate port {name!r}")
        self.outputs[name] = list(nets)

    def add_gate(self, gtype: GateType, *inputs: int, name: str = "") -> int:
        """Instantiate a gate; returns the freshly allocated output net."""
        out = self.net(name)
        self._check_undriven_ok(inputs)
        gate = Gate(gtype, tuple(inputs), out)
        self.gates.append(gate)
        self._driven.add(out)
        self._order = None
        return out

    def add_dff(self, d: int, init: int = 0, name: str = "") -> int:
        """Instantiate a flop fed by net ``d``; returns the q net."""
        q = self.net(name or f"dff{len(self.dffs)}.q")
        self.dffs.append(DFF(d=d, q=q, init=init, name=name))
        self._driven.add(q)
        self._order = None
        return q

    def _check_undriven_ok(self, inputs: Sequence[int]) -> None:
        for nid in inputs:
            if nid >= self.net_count:
                raise NetlistError(f"net {nid} does not exist")

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def topo_order(self) -> list[Gate]:
        """Topological order of the combinational gates.

        Raises :class:`NetlistError` on combinational cycles.
        """
        if self._order is not None:
            return self._order
        gate_outputs = self._gate_outputs
        consumers: dict[int, list[Gate]] = {}
        indegree: dict[int, int] = {}
        for gate in self.gates:
            deps = 0
            for nid in gate.inputs:
                if nid in gate_outputs:
                    deps += 1
                    consumers.setdefault(nid, []).append(gate)
            indegree[gate.output] = deps
        ready = [g for g in self.gates if indegree[g.output] == 0]
        order: list[Gate] = []
        while ready:
            gate = ready.pop()
            order.append(gate)
            for consumer in consumers.get(gate.output, []):
                indegree[consumer.output] -= 1
                if indegree[consumer.output] == 0:
                    ready.append(consumer)
        if len(order) != len(self.gates):
            raise NetlistError(f"netlist {self.name!r} has a combinational cycle")
        self._order = order
        return order

    @property
    def _gate_outputs(self) -> set[int]:
        return {g.output for g in self.gates}

    def stats(self) -> dict[str, int]:
        """Cell-count statistics for resource estimation."""
        counts = Counter(g.type.value for g in self.gates)
        counts["dff"] = len(self.dffs)
        counts["nets"] = self.net_count
        counts["gates"] = len(self.gates)
        return dict(counts)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def _initial_values(self) -> list[int]:
        values = [0] * self.net_count
        for dff in self.dffs:
            values[dff.q] = dff.init
        return values

    def evaluate(
        self, input_values: dict[str, int], state: list[int] | None = None
    ) -> dict[str, int]:
        """Pure combinational evaluation given input-bus values and an
        optional flop-state snapshot; returns output-bus values."""
        values = state[:] if state is not None else self._initial_values()
        self._apply_inputs(values, input_values)
        self._propagate(values)
        return self._read_outputs(values)

    def _apply_inputs(self, values: list[int], input_values: dict[str, int]) -> None:
        unknown = [k for k in input_values if k not in self.inputs]
        if unknown:
            raise NetlistError(
                f"netlist {self.name!r} has no input port(s) {sorted(unknown)}; "
                f"declared inputs: {sorted(self.inputs)}"
            )
        for name, nets in self.inputs.items():
            word = input_values.get(name, 0)
            for i, nid in enumerate(nets):
                values[nid] = (word >> i) & 1

    def _propagate(self, values: list[int]) -> None:
        for gate in self.topo_order():
            values[gate.output] = gate.evaluate(values)

    def _read_outputs(self, values: list[int]) -> dict[str, int]:
        result = {}
        for name, nets in self.outputs.items():
            word = 0
            for i, nid in enumerate(nets):
                word |= values[nid] << i
            result[name] = word
        return result

    def simulate(self, vectors: Sequence[dict[str, int]]) -> list[dict[str, int]]:
        """Clocked simulation: apply one input vector per cycle, clocking the
        flops between vectors; returns per-cycle output values (post-edge
        combinational settle, i.e. what a tester samples before the next
        edge)."""
        state = self._initial_values()
        results = []
        for vec in vectors:
            self._apply_inputs(state, vec)
            self._propagate(state)
            results.append(self._read_outputs(state))
            self._clock_flops(state, vec)
        return results

    def _clock_flops(self, values: list[int], input_values: dict[str, int]) -> None:
        if self.scan_ports is not None:
            test_net, scanin_net, _ = self.scan_ports
            if values[test_net]:
                # Scan shift: chain order, scanin feeds flop 0.
                chain = sorted(
                    (f for f in self.dffs if f.scan_index >= 0),
                    key=lambda f: f.scan_index,
                )
                shifted = [values[scanin_net]] + [values[f.q] for f in chain[:-1]]
                for flop, val in zip(chain, shifted):
                    values[flop.q] = val
                return
        nextq = [(dff.q, values[dff.d]) for dff in self.dffs]
        for q, val in nextq:
            values[q] = val
