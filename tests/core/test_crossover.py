"""Fig. 3 — the single-point crossover worked example, plus operator
properties shared by every implementation level (behavioural model,
cycle-accurate core, gate netlist)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness import F3
from repro.hdl import rtlib

u16 = st.integers(0, 0xFFFF)
cut4 = st.integers(0, 15)


def reference_crossover(p1: int, p2: int, cut: int) -> tuple[int, int]:
    """Sec. III-B.3: mask has ones from position 0 to cut-1; off1 takes the
    low part of parent 1 and the high part of parent 2."""
    mask = (1 << cut) - 1
    inv = ~mask & 0xFFFF
    return (p1 & mask) | (p2 & inv), (p2 & mask) | (p1 & inv)


class TestFig3WorkedExample:
    def test_paper_figure(self):
        # Fig. 3 shows 8-bit parents crossed at a mid cutpoint; transcribe:
        # parent1 = 1 0 1 0 1 0 1 0 (MSB..LSB), parent2 = 0 1 0 1 0 1 0 1,
        # cutpoint at 4 -> offspring swap their low nibbles.
        p1, p2, cut = 0b10101010, 0b01010101, 4
        off1, off2 = reference_crossover(p1, p2, cut)
        assert off1 == (p1 & 0x0F) | (p2 & 0xF0)
        assert off2 == (p2 & 0x0F) | (p1 & 0xF0)

    def test_two_offspring_produced(self):
        # "The crossover operation produces two offspring" — and they are
        # each other's complement choice at every position.
        off1, off2 = reference_crossover(0xBEEF, 0x1234, 9)
        assert off1 != off2
        for i in range(16):
            bits = {(off1 >> i) & 1, (off2 >> i) & 1}
            parents = {(0xBEEF >> i) & 1, (0x1234 >> i) & 1}
            assert bits == parents


class TestCrossLevelAgreement:
    @given(u16, u16, cut4)
    def test_gate_level_matches_reference(self, p1, p2, cut):
        nl = rtlib.build_crossover_unit(16)
        out = nl.evaluate({"p1": p1, "p2": p2, "cut": cut})
        assert (out["off1"], out["off2"]) == reference_crossover(p1, p2, cut)

    @given(u16, u16, cut4)
    def test_behavioral_model_matches_reference(self, p1, p2, cut):
        # Force the behavioural engine's crossover path deterministically.
        params = GAParameters(1, 2, 15, 0, 1)
        ga = BehavioralGA(params, F3())

        class FixedRNG:
            def __init__(self, words):
                self.words = list(words)

            def next_word(self):
                return self.words.pop(0)

        ga.rng = FixedRNG([0, cut])  # decide-word 0 (< threshold 15), cut
        assert ga._crossover(p1, p2) == reference_crossover(p1, p2, cut)

    @given(u16, u16)
    def test_cut_15_swaps_only_msb(self, p1, p2):
        off1, off2 = reference_crossover(p1, p2, 15)
        assert off1 & 0x7FFF == p1 & 0x7FFF
        assert off1 & 0x8000 == p2 & 0x8000

    @given(u16)
    def test_self_crossover_is_identity(self, p):
        for cut in range(16):
            assert reference_crossover(p, p, cut) == (p, p)


class TestMutationReference:
    @given(u16, cut4)
    def test_single_bit_flip_xor_mask(self, ind, point):
        # Sec. III-B.4: "A randomly chosen mutation point dictates the
        # appropriate bit mask to be used in an XOR operation".
        nl = rtlib.build_mutation_unit(16)
        out = nl.evaluate({"ind": ind, "point": point, "en": 1})["out"]
        assert out == ind ^ (1 << point)
        assert bin(out ^ ind).count("1") == 1

    @given(u16, cut4)
    def test_mutation_is_involution(self, ind, point):
        once = ind ^ (1 << point)
        assert once ^ (1 << point) == ind