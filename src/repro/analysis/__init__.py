"""Analysis substrate: convergence metrics, FPGA resource estimation, the
hardware/software timing model, and figure-series extraction.

Each module maps to a piece of the paper's evaluation:

* :mod:`repro.analysis.convergence` — the Table V convergence-generation
  rule and the Figs. 13-16 "found within N generations / fraction of the
  solution space" arithmetic;
* :mod:`repro.analysis.resources` — the Table VI post-place-and-route
  report (slice %, clock estimate, block-RAM utilisation) regenerated from
  the flattened gate netlists and memory footprints;
* :mod:`repro.analysis.timing` — the Sec. IV-C software-vs-hardware runtime
  comparison (PowerPC-style cost model vs. measured GA-domain cycles);
* :mod:`repro.analysis.plots` — per-figure data series plus a small ASCII
  renderer for the benchmark harness output.
"""

from repro.analysis.convergence import (
    convergence_generation,
    first_hit_generation,
    evaluations_to_best,
    fraction_of_space,
)
from repro.analysis.resources import (
    XC2VP30,
    DeviceCapacity,
    ResourceReport,
    estimate_netlist,
    ga_core_report,
)
from repro.analysis.timing import (
    PAPER_SOFTWARE_RUNTIME_S,
    PAPER_SPEEDUP,
    PowerPCCostModel,
    SpeedupReport,
    hardware_runtime,
    software_runtime,
    speedup_experiment,
)
from repro.analysis.plots import (
    ascii_plot,
    best_avg_series,
    function_series,
    scatter_series,
)

__all__ = [
    "convergence_generation",
    "first_hit_generation",
    "evaluations_to_best",
    "fraction_of_space",
    "XC2VP30",
    "DeviceCapacity",
    "ResourceReport",
    "estimate_netlist",
    "ga_core_report",
    "PowerPCCostModel",
    "SpeedupReport",
    "PAPER_SOFTWARE_RUNTIME_S",
    "PAPER_SPEEDUP",
    "hardware_runtime",
    "software_runtime",
    "speedup_experiment",
    "ascii_plot",
    "best_avg_series",
    "function_series",
    "scatter_series",
]
