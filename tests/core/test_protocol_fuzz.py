"""Protocol-robustness properties of the GA core.

The handshakes of Table II are latency-insensitive by construction: however
long the FEM or the surrounding system takes to respond, the *results* must
be bit-identical.  These hypothesis tests fuzz the timing and prove it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GAParameters, GASystem
from repro.core.behavioral import BehavioralGA
from repro.ehw.system_classes import EHWClass, LatencyFEM
from repro.fitness import F2, F3


def params(seed=45890):
    return GAParameters(
        n_generations=3,
        population_size=6,
        crossover_threshold=10,
        mutation_threshold=3,
        rng_seed=seed,
    )


class TestLatencyInsensitivity:
    @settings(max_examples=12, deadline=None)
    @given(
        config=st.integers(1, 25),
        readback=st.integers(1, 25),
        evaluation=st.integers(1, 40),
        seed=st.integers(1, 0xFFFF),
    )
    def test_any_fem_latency_gives_identical_results(
        self, config, readback, evaluation, seed
    ):
        p = params(seed)
        reference = BehavioralGA(p, F3()).run()
        ehw_class = EHWClass("fuzz", config, readback)
        system = GASystem(
            p,
            F3(),
            fem_factory=lambda name, iface, fn: LatencyFEM(
                name, iface, fn, ehw_class, evaluation
            ),
        )
        result = system.run()
        assert result.best_individual == reference.best_individual
        assert [g.as_tuple() for g in result.history] == [
            g.as_tuple() for g in reference.history
        ]

    @settings(max_examples=8, deadline=None)
    @given(jitter_seed=st.integers(0, 2**31 - 1))
    def test_randomly_jittering_external_fem(self, jitter_seed):
        """An external FEM that answers after a *different random delay per
        request* still yields the reference run."""
        import random

        from repro.fitness.mux import ExternalFEMPort

        p = params()
        fn = F2()
        reference = BehavioralGA(p, fn).run()

        ext = ExternalFEMPort.create()
        system = GASystem(p, {}, select=1, external={1: ext})
        jitter = random.Random(jitter_seed)
        state = {"countdown": 0, "serving": False}

        def fem(_tick):
            ports = system.ports
            if ports.fit_request.value and not state["serving"]:
                state["serving"] = True
                state["countdown"] = jitter.randrange(1, 12)
            if state["serving"]:
                if state["countdown"] > 0:
                    state["countdown"] -= 1
                else:
                    ext.fit_value_ext.poke(fn(ports.candidate.value))
                    ext.fit_valid_ext.poke(1)
            if not ports.fit_request.value:
                state["serving"] = False
                ext.fit_valid_ext.poke(0)

        system.sim.probe(fem)
        result = system.run()
        assert result.best_individual == reference.best_individual
        assert result.best_fitness == reference.best_fitness

    def test_slow_memory_equivalent_system(self):
        # Dual-clock (slow GA domain relative to base) and single-clock
        # produce the same run — checked again here as part of the protocol
        # suite with a different function/seed than the dual-clock test.
        p = params(seed=0xB342)
        fast = GASystem(p, F2()).run()
        dual = GASystem(p, F2(), dual_clock=True).run()
        assert fast.best_individual == dual.best_individual
        assert [g.as_tuple() for g in fast.history] == [
            g.as_tuple() for g in dual.history
        ]
