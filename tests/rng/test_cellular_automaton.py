"""Unit & property tests for the cellular-automaton PRNG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.cellular_automaton import (
    DEFAULT_RULE_VECTOR,
    PRESET_SEEDS,
    CAStreamBank,
    CellularAutomatonPRNG,
    ca_period,
    ca_step,
    orbit_tables,
)

seeds = st.integers(1, 0xFFFF)


class TestCAStep:
    def test_rule90_pure(self):
        # rule_vector 0: every cell is left XOR right
        state = 0b0000_0000_0001_0000
        nxt = ca_step(state, rule_vector=0)
        assert nxt == 0b0000_0000_0010_1000

    def test_rule150_pure(self):
        # rule_vector all ones: left XOR self XOR right
        state = 0b0000_0000_0001_0000
        nxt = ca_step(state, rule_vector=0xFFFF)
        assert nxt == 0b0000_0000_0011_1000

    def test_null_boundaries(self):
        # A lone bit at the edge only feeds inward.
        assert ca_step(0x8000, rule_vector=0) == 0x4000
        assert ca_step(0x0001, rule_vector=0) == 0x0002

    def test_zero_is_fixed_point(self):
        assert ca_step(0, DEFAULT_RULE_VECTOR) == 0

    @given(seeds)
    def test_linearity_over_gf2(self, state):
        # The CA update is linear: step(a ^ b) == step(a) ^ step(b).
        other = 0x1234
        assert ca_step(state ^ other) == ca_step(state) ^ ca_step(other)


class TestMaximality:
    def test_default_rule_is_maximal(self):
        assert ca_period(DEFAULT_RULE_VECTOR) == 0xFFFF

    def test_non_maximal_rule_detected(self):
        # Pure rule 90 on 16 cells is far from maximal.
        assert ca_period(0) not in (-1, 0xFFFF)


class TestPRNG:
    def test_first_word_is_seed(self):
        rng = CellularAutomatonPRNG(0xACE1)
        assert rng.next_word() == 0xACE1

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            CellularAutomatonPRNG(0)

    def test_overwide_seed_rejected(self):
        with pytest.raises(ValueError):
            CellularAutomatonPRNG(0x10000)

    @given(seeds)
    @settings(max_examples=20)
    def test_block_matches_stepping(self, seed):
        stepped = CellularAutomatonPRNG(seed, precompute=False)
        blocked = CellularAutomatonPRNG(seed)
        expected = [stepped.next_word() for _ in range(50)]
        assert blocked.block(50).tolist() == expected

    @given(seeds)
    @settings(max_examples=10)
    def test_block_split_invariance(self, seed):
        a = CellularAutomatonPRNG(seed)
        b = CellularAutomatonPRNG(seed)
        whole = a.block(40)
        parts = np.concatenate([b.block(13), b.block(27)])
        assert np.array_equal(whole, parts)

    def test_block_wraps_around_orbit(self):
        rng = CellularAutomatonPRNG(1)
        first = rng.block(0xFFFF)
        again = rng.block(1)
        assert again[0] == first[0]  # full period brings us home

    def test_reseed_restarts_stream(self):
        rng = CellularAutomatonPRNG(0x1567)
        first = rng.block(10).tolist()
        rng.reseed(0x1567)
        assert rng.block(10).tolist() == first

    def test_different_seeds_different_streams(self):
        a = CellularAutomatonPRNG(45890).block(32)
        b = CellularAutomatonPRNG(10593).block(32)
        assert not np.array_equal(a, b)

    def test_presets(self):
        assert PRESET_SEEDS == (45890, 10593, 1567)
        for i, seed in enumerate(PRESET_SEEDS):
            assert CellularAutomatonPRNG.from_preset(i).seed == seed
        with pytest.raises(ValueError):
            CellularAutomatonPRNG.from_preset(3)

    def test_draw_counter(self):
        rng = CellularAutomatonPRNG(42)
        rng.next_word()
        rng.block(5)
        assert rng.draws == 6

    def test_orbit_tables_invert_each_other(self):
        orbit, position = orbit_tables()
        assert orbit.shape == (0xFFFF,)
        some = np.array([1, 45890, 10593, 1567, 0xFFFF])
        assert np.array_equal(orbit[position[some]], some)

    def test_orbit_position_tracks_stream(self):
        rng = CellularAutomatonPRNG(45890)
        orbit, _ = orbit_tables()
        for _ in range(5):
            assert int(orbit[rng.orbit_position()]) == rng.state
            rng.next_word()

    def test_gate_level_rng_matches_prng(self):
        # The same stream must come out of the flattened CA netlist.
        from repro.hdl import rtlib
        from repro.hdl.scan import Stepper

        nl = rtlib.build_ca_rng(16, DEFAULT_RULE_VECTOR)
        stepper = Stepper(nl)
        stepper.step(seed=0x2961, load=1, en=0)
        rng = CellularAutomatonPRNG(0x2961)
        for _ in range(64):
            out = stepper.step(load=0, en=1)
            assert out["rn"] == rng.next_word()


class TestStreamBank:
    def test_seed_validation(self):
        with pytest.raises(ValueError):
            CAStreamBank([])
        with pytest.raises(ValueError):
            CAStreamBank([1, 0])
        with pytest.raises(ValueError):
            CAStreamBank([0x10000])

    @given(st.lists(seeds, min_size=1, max_size=6))
    @settings(max_examples=15)
    def test_draws_match_serial_streams(self, seed_list):
        bank = CAStreamBank(seed_list)
        rngs = [CellularAutomatonPRNG(s) for s in seed_list]
        for _ in range(20):
            words = bank.draw()
            assert words.tolist() == [r.next_word() for r in rngs]
        assert bank.states.tolist() == [r.state for r in rngs]
        assert bank.draws.tolist() == [r.draws for r in rngs]

    def test_masked_draw_peeks_unselected_streams(self):
        # a stream outside the mask must see the same word again — the
        # serial analogue of a replica skipping an RNG-consuming branch
        bank = CAStreamBank([45890, 10593])
        first = bank.draw(advance=np.array([True, False]))
        second = bank.draw()
        rng = CellularAutomatonPRNG(45890)
        assert first[1] == second[1] == 10593
        assert first[0] == rng.next_word()
        assert second[0] == rng.next_word()
        assert bank.draws.tolist() == [2, 1]

    @given(st.lists(seeds, min_size=1, max_size=4))
    @settings(max_examples=10)
    def test_block2d_rows_match_block(self, seed_list):
        bank = CAStreamBank(seed_list)
        words = bank.block2d(33)
        for i, s in enumerate(seed_list):
            rng = CellularAutomatonPRNG(s)
            assert words[i].tolist() == rng.block(33).tolist()
            assert int(bank.states[i]) == rng.state

    def test_block2d_classmethod_one_shot(self):
        words, end_states = CellularAutomatonPRNG.block2d([45890, 1567], 16)
        for i, s in enumerate((45890, 1567)):
            rng = CellularAutomatonPRNG(s)
            assert words[i].tolist() == rng.block(16).tolist()
            assert int(end_states[i]) == rng.state

    def test_stream_bank_continues_generator(self):
        rng = CellularAutomatonPRNG(45890)
        rng.block(7)  # advance mid-stream
        bank = rng.stream_bank()
        twin = CellularAutomatonPRNG(45890)
        twin.block(7)
        assert bank.block2d(10)[0].tolist() == twin.block(10).tolist()

    def test_spacing_respected(self):
        bank = CAStreamBank([45890], spacing=3)
        rng = CellularAutomatonPRNG(45890, spacing=3)
        assert bank.block2d(20)[0].tolist() == rng.block(20).tolist()
