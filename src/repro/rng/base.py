"""Common interface for the hardware-style 16-bit random sources."""

from __future__ import annotations

import numpy as np


class RandomSource:
    """A deterministic stream of 16-bit words.

    Subclasses implement :meth:`_advance` (compute the successor state) and
    hold their state in ``self.state``.  The convention mirrors the hardware:
    the GA core *reads the output register* and the module then steps, so
    :meth:`next_word` returns the current state and advances afterwards.
    """

    #: Word width in bits.
    width: int = 16

    def __init__(self, seed: int):
        if not 0 < seed < (1 << self.width):
            raise ValueError(
                f"seed must be in [1, {(1 << self.width) - 1}], got {seed}"
            )
        self.seed = seed
        self.state = seed
        self.draws = 0

    def _advance(self, state: int) -> int:
        raise NotImplementedError

    def state_key(self) -> int:
        """Hashable full internal state (overridden by generators whose
        state is wider than the emitted word, e.g. :class:`~repro.rng.lcg.LCG16`)."""
        return self.state

    def next_word(self) -> int:
        """Return the current 16-bit word and advance the generator."""
        word = self.state
        self.state = self._advance(self.state)
        self.draws += 1
        return word

    def block(self, n: int) -> np.ndarray:
        """Return the next ``n`` words as a ``uint16`` array.

        The base implementation loops; sequence generators with a
        precomputed orbit (the CA PRNG) override this with O(1) slicing.
        """
        out = np.empty(n, dtype=np.uint16)
        for i in range(n):
            out[i] = self.next_word()
        return out

    def reseed(self, seed: int) -> None:
        """Load a new seed (the programmable-seed feature of the core)."""
        if not 0 < seed < (1 << self.width):
            raise ValueError(
                f"seed must be in [1, {(1 << self.width) - 1}], got {seed}"
            )
        self.seed = seed
        self.state = seed
        self.draws = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(seed={self.seed:#06x}, draws={self.draws})"
