"""The GA core's port interface — Table II of the paper, signal for signal.

``PORT_SPEC`` is the literal table contents (name, direction, width);
:class:`GAPorts` instantiates one :class:`~repro.hdl.signal.Signal` per port
with those widths, and is the bundle every surrounding module (GA memory,
RNG module, initialization module, application module) wires against, as in
Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.hdl.signal import Signal

#: Table II: (port, direction, width).  Direction is from the GA core's
#: perspective: "I" = input to the core, "O" = output from the core.
PORT_SPEC: list[tuple[str, str, int]] = [
    ("reset", "I", 1),
    ("sys_clock", "I", 1),
    ("ga_load", "I", 1),
    ("index", "I", 3),
    ("value", "I", 16),
    ("data_valid", "I", 1),
    ("data_ack", "O", 1),
    ("fit_value", "I", 16),
    ("fit_request", "O", 1),
    ("fit_valid", "I", 1),
    ("candidate", "O", 16),
    ("mem_address", "O", 8),
    ("mem_data_out", "O", 32),
    ("mem_wr", "O", 1),
    ("mem_data_in", "I", 32),
    ("start_GA", "I", 1),
    ("GA_done", "O", 1),
    ("test", "I", 1),
    ("scanin", "I", 1),
    ("scanout", "O", 1),
    ("preset", "I", 2),
    ("rn", "I", 16),
    ("fitfunc_select", "I", 3),
    ("fit_value_ext", "I", 16),
    ("fit_valid_ext", "I", 1),
]

# NOTE: the paper's Table II lists GA_done's direction as "I", an evident
# typo — the text says "the GA_done signal is asserted" *by the core*
# (Sec. III-B.8), so it is an output here.


@dataclass
class GAPorts:
    """One Signal per Table II port, plus the rn_taken strobe.

    ``rn_taken`` is the single modelling addition: the core pulses it when
    it consumes the RNG output register, so the RNG module advances exactly
    once per consumed word.  This pins down the draw sequence independently
    of FSM micro-timing, which is what makes the cycle-accurate core and the
    vectorised behavioural model produce bit-identical populations.
    """

    reset: Signal
    sys_clock: Signal
    ga_load: Signal
    index: Signal
    value: Signal
    data_valid: Signal
    data_ack: Signal
    fit_value: Signal
    fit_request: Signal
    fit_valid: Signal
    candidate: Signal
    mem_address: Signal
    mem_data_out: Signal
    mem_wr: Signal
    mem_data_in: Signal
    start_GA: Signal
    GA_done: Signal
    test: Signal
    scanin: Signal
    scanout: Signal
    preset: Signal
    rn: Signal
    fitfunc_select: Signal
    fit_value_ext: Signal
    fit_valid_ext: Signal
    rn_taken: Signal

    @classmethod
    def create(cls, prefix: str = "ga") -> "GAPorts":
        """Instantiate all ports with Table II widths."""
        signals = {
            name: Signal(f"{prefix}.{name}", width) for name, _dir, width in PORT_SPEC
        }
        signals["rn_taken"] = Signal(f"{prefix}.rn_taken", 1)
        return cls(**signals)

    def signal(self, name: str) -> Signal:
        """Look a port up by its Table II name."""
        return getattr(self, name)

    def all_signals(self) -> list[Signal]:
        """Every signal in the bundle (used for bulk reset)."""
        return [getattr(self, f.name) for f in fields(self)]
