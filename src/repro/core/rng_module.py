"""The RNG module of Fig. 4.

"The GA core reads the output register of the RNG module when it needs a
random number" (Sec. III-B.7).  This component drives the ``rn`` port with
the generator's output register every cycle and advances the generator once
per ``rn_taken`` pulse from the core, so the stream of consumed words is
exactly the generator's word sequence regardless of how many cycles the
core's FSM spends between draws.

The module is generator-agnostic ("the operation of the GA core is
independent of the RNG implementation"): any
:class:`~repro.rng.base.RandomSource` plugs in, with the cellular-automaton
PRNG as the default.  The seed is loaded when the core (re)starts.
"""

from __future__ import annotations

from repro.core.ports import GAPorts
from repro.hdl.component import Component
from repro.rng.base import RandomSource
from repro.rng.cellular_automaton import CellularAutomatonPRNG


class RNGModule(Component):
    """Drives ``rn`` from a :class:`RandomSource`; advances on ``rn_taken``."""

    def __init__(
        self,
        ports: GAPorts,
        source: RandomSource | None = None,
        name: str = "rng_module",
    ):
        super().__init__(name)
        self.ports = ports
        self.source = source if source is not None else CellularAutomatonPRNG(1)

    def load_seed(self, seed: int) -> None:
        """Load the programmed (or preset) initial seed."""
        self.source.reseed(seed)
        self.ports.rn.poke(self.source.state)

    def clock(self) -> None:
        if self.ports.rn_taken.value:
            # The core consumed the current word last cycle; step once.
            self.source.next_word()
        self.drive(self.ports.rn, self.source.state)

    def reset(self) -> None:
        super().reset()
        self.source.reseed(self.source.seed)
        self.ports.rn.reset()
