"""Scott, Samal & Seth's HGA [5] — the first FPGA general-purpose GA.

Table I row: fixed population of 16, fixed generation count, roulette-wheel
selection, single-point crossover, fixed crossover/mutation rates, cellular
automaton RNG with a fixed seed, no elitism, no presets, no initialization
mode.  (The original used 3-bit members across multiple FPGAs on a BORG
board; member width here is 16 so all engines compete on the same
functions.)
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, PopulationBaseline
from repro.fitness.base import FitnessFunction
from repro.rng.cellular_automaton import CellularAutomatonPRNG


class ScottHGA(PopulationBaseline):
    """Simple generational GA with roulette selection, fixed parameters."""

    name = "Scott et al. [5]"
    population_size = 16
    elitist = False
    #: Fixed operator rates of the prototype (not programmable).
    CROSSOVER_THRESHOLD = 8  # rate 0.5
    MUTATION_THRESHOLD = 1  # rate 0.0625
    FIXED_SEED = 0xACE1

    def __init__(self, rng=None):
        super().__init__(rng or CellularAutomatonPRNG(self.FIXED_SEED))

    def _roulette(self, cum: np.ndarray, total: int) -> int:
        threshold = (self.rng.next_word() * total) >> 16
        return min(int(np.searchsorted(cum, threshold, side="right")), len(cum) - 1)

    def run(self, fitness: FitnessFunction, evaluation_budget: int) -> BaselineResult:
        table = fitness.table()
        pop = self.population_size
        inds = self.rng.block(pop).astype(np.int64)
        fits = table[inds].astype(np.int64)
        evals = pop
        best_idx = int(fits.argmax())
        best_ind, best_fit = int(inds[best_idx]), int(fits[best_idx])
        series = [best_fit]

        while evals < evaluation_budget:
            cum = np.cumsum(fits)
            total = int(cum[-1])
            new_inds = np.empty(pop, dtype=np.int64)
            count = 0
            while count < pop:
                p1 = int(inds[self._roulette(cum, total)])
                p2 = int(inds[self._roulette(cum, total)])
                if self._rand4() < self.CROSSOVER_THRESHOLD:
                    o1, o2 = self._crossover_point(p1, p2)
                else:
                    o1, o2 = p1, p2
                for off in (o1, o2):
                    if count >= pop:
                        break
                    if self._rand4() < self.MUTATION_THRESHOLD:
                        off = self._mutate_bit(off)
                    new_inds[count] = off
                    count += 1
            inds = new_inds
            fits = table[inds].astype(np.int64)
            evals += pop
            gen_best = int(fits.max())
            if gen_best > best_fit:
                best_fit = gen_best
                best_ind = int(inds[int(fits.argmax())])
            series.append(best_fit)

        return BaselineResult(self.name, best_ind, best_fit, evals, series)
