"""Resumable stepping of BatchBehavioralGA + initial-population checks.

The serving layer relies on two engine-level properties:

* *chunk invariance* — stepping a run in any sequence of chunk sizes,
  within one batch object or across suspend/resume into a successor
  batch, is draw-for-draw identical to one uninterrupted run;
* *early validation* — a malformed caller-supplied initial population
  fails fast with a named ``ValueError``, not deep inside the loop.
"""

import numpy as np
import pytest

from repro.core.batch import BatchBehavioralGA
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.functions import BF6, F3, MBF6_2


def params(**overrides) -> GAParameters:
    base = dict(
        n_generations=16,
        population_size=12,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


def history_tuples(result):
    return [
        (g.generation, g.best_fitness, g.best_individual, g.fitness_sum)
        for g in result.history
    ]


class TestStepping:
    def test_chunked_steps_match_one_shot_run(self):
        params_list = [params(rng_seed=s) for s in (45890, 10593, 1567)]
        fns = [BF6(), MBF6_2(), F3()]
        expect = BatchBehavioralGA(params_list, fns).run()

        batch = BatchBehavioralGA(params_list, fns)
        batch.begin()
        assert batch.generation == 0 and not batch.done
        assert batch.step(5) == 5
        assert batch.generation == 5
        assert batch.step(3) == 3
        assert batch.step() == 8  # the remainder
        assert batch.done
        assert batch.step(4) == 0  # nothing left
        got = batch.finalize()
        for g, e in zip(got, expect):
            assert g.best_individual == e.best_individual
            assert g.best_fitness == e.best_fitness
            assert g.evaluations == e.evaluations
            assert history_tuples(g) == history_tuples(e)

    def test_suspend_resume_across_batches_matches_solo_serial(self):
        # run g1 generations in one batch, carry populations + RNG states
        # into a second batch for g2 more; the spliced trace must be
        # bit-identical to a solo serial run of g1 + g2 generations
        g1, g2 = 7, 9
        seeds = (45890, 10593)
        first = BatchBehavioralGA(
            [params(rng_seed=s, n_generations=g1) for s in seeds], BF6()
        )
        first_results = first.run()

        second = BatchBehavioralGA(
            [params(rng_seed=s, n_generations=g2) for s in seeds],
            BF6(),
            rng_states=[int(s) for s in first.rng_states],
        )
        second_results = second.run(initial=first.final_populations)

        for r, seed in enumerate(seeds):
            engine = BehavioralGA(
                params(rng_seed=seed, n_generations=g1 + g2), BF6()
            )
            solo = engine.run()
            # resumed chunk's generation 0 restates the suspension point
            resumed = history_tuples(second_results[r])
            suspended = history_tuples(first_results[r])
            assert resumed[0][1:] == suspended[-1][1:]
            spliced = suspended + [
                (g1 + gen, bf, bi, fs) for gen, bf, bi, fs in resumed[1:]
            ]
            assert spliced == history_tuples(solo)
            assert second_results[r].best_individual == solo.best_individual
            assert second_results[r].best_fitness == solo.best_fitness
            assert (
                first_results[r].evaluations + second_results[r].evaluations
                == solo.evaluations
            )
            assert int(second.rng_states[r]) == engine.rng.state

    def test_partial_finalize_matches_shorter_run(self):
        batch = BatchBehavioralGA([params()], BF6())
        batch.begin()
        batch.step(6)
        partial = batch.finalize()
        expect = BatchBehavioralGA([params(n_generations=6)], BF6()).run()
        assert history_tuples(partial[0]) == history_tuples(expect[0])
        assert partial[0].evaluations == expect[0].evaluations

    def test_lifecycle_guards(self):
        batch = BatchBehavioralGA([params()], BF6())
        with pytest.raises(RuntimeError):
            batch.step()
        with pytest.raises(RuntimeError):
            batch.finalize()
        with pytest.raises(RuntimeError):
            _ = batch.generation
        batch.begin()
        batch.step()
        batch.finalize()
        with pytest.raises(RuntimeError):
            batch.step(1)
        with pytest.raises(RuntimeError):
            batch.finalize()
        # begin() restarts the whole lifecycle
        batch.begin()
        batch.step()
        assert len(batch.finalize()) == 1


class TestInitialValidation:
    def make(self, n=2, pop=12):
        return BatchBehavioralGA(
            [params(rng_seed=s, population_size=pop) for s in (45890, 10593)][:n],
            F3(),
        )

    def test_float_dtype_rejected(self):
        batch = self.make()
        with pytest.raises(ValueError, match="integer array"):
            batch.run(initial=np.zeros((2, 12), dtype=np.float64))

    def test_bool_dtype_rejected(self):
        batch = self.make()
        with pytest.raises(ValueError, match="integer array"):
            batch.run(initial=np.zeros((2, 12), dtype=bool))

    def test_wrong_shape_rejected_with_expected_shape_named(self):
        batch = self.make()
        with pytest.raises(ValueError, match=r"expected \(2, 12\)"):
            batch.run(initial=np.zeros((2, 8), dtype=np.int64))
        with pytest.raises(ValueError, match=r"expected \(2, 12\)"):
            batch.run(initial=np.zeros(12, dtype=np.int64))

    def test_out_of_range_values_rejected(self):
        batch = self.make()
        bad = np.zeros((2, 12), dtype=np.int64)
        bad[1, 3] = 0x10000
        with pytest.raises(ValueError, match="16-bit"):
            batch.run(initial=bad)
        bad[1, 3] = -1
        with pytest.raises(ValueError, match="16-bit"):
            batch.run(initial=bad)

    def test_nested_lists_of_ints_accepted(self):
        batch = self.make()
        initial = [[7] * 12, [0xFFFF] * 12]
        results = batch.run(initial=initial)
        assert len(results) == 2
