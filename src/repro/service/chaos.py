"""Deterministic chaos injection for the serving stack.

The service-level analogue of the resilience layer's
:class:`~repro.resilience.campaign.ResilienceCampaign`: where that sweeps
seed-addressed SEUs through the *engines*, this schedules seed-derived
*infrastructure* faults — worker kills, chunk delays, dropped TCP
connections — through the serving stack, so the fault-tolerance layer
(retry, pool respawn, hung-chunk watchdog, checkpoint resume) can be
soak-tested against a reproducible fault plan.

A :class:`ChaosPlan` is a pure schedule: explicit dispatch/connection
indices at which each fault fires, derived from a seed by
:meth:`ChaosPlan.from_seed` (or written out by hand in tests).  A
:class:`ChaosMonkey` consumes the plan at runtime: the
:class:`~repro.service.workers.WorkerPool` asks it before every chunk
dispatch and merges the returned fault into the chunk spec, and the TCP
server asks it per accepted connection.  Faults execute *inside*
``run_slab_chunk``:

* ``kill`` — in a process worker, ``os._exit`` (a real worker death; the
  parent observes ``BrokenProcessPool`` and respawns the pool); in a
  thread worker, a :class:`~repro.service.jobs.WorkerCrashError` (same
  retry path, no pool respawn needed).
* ``delay`` — ``time.sleep`` inside the chunk; long enough delays trip
  the scheduler's hung-chunk watchdog.

The determinism contract this enables (``tests/service/test_chaos.py``):
because lost chunks re-execute from carried state that only moves at
chunk boundaries, every completed job's :class:`~repro.service.jobs.JobResult`
is bit-identical to a fault-free run, under every fault plan.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
import time
from dataclasses import dataclass, field

from repro.service.jobs import WorkerCrashError


@dataclass(frozen=True)
class ChaosPlan:
    """A pre-computed fault schedule, addressed by dispatch index.

    ``kill_chunks``/``delay_chunks`` are 0-based indices into the stream
    of chunk dispatches (retries consume indices too, so a killed chunk's
    re-execution lands on a *later* index and eventually misses the kill
    set); ``drop_connections`` indexes accepted TCP connections.
    """

    kill_chunks: tuple[int, ...] = ()
    delay_chunks: tuple[int, ...] = ()
    delay_s: float = 0.05
    drop_connections: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0: {self.delay_s}")
        for name in ("kill_chunks", "delay_chunks", "drop_connections"):
            if any(i < 0 for i in getattr(self, name)):
                raise ValueError(f"{name} indices must be >= 0")

    @classmethod
    def from_seed(
        cls,
        seed: int,
        horizon: int = 64,
        kill_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_s: float = 0.05,
        drop_rate: float = 0.0,
        connection_horizon: int = 32,
    ) -> "ChaosPlan":
        """Derive a schedule from a seed: each of the first ``horizon``
        chunk dispatches is independently marked kill/delay/none with the
        given rates (kill wins ties), and each of the first
        ``connection_horizon`` connections is dropped at ``drop_rate``.
        The same seed always yields the same plan."""
        rng = random.Random(seed)
        kills, delays = [], []
        for i in range(horizon):
            draw = rng.random()
            if draw < kill_rate:
                kills.append(i)
            elif draw < kill_rate + delay_rate:
                delays.append(i)
        drops = [
            i for i in range(connection_horizon) if rng.random() < drop_rate
        ]
        return cls(
            kill_chunks=tuple(kills),
            delay_chunks=tuple(delays),
            delay_s=delay_s,
            drop_connections=tuple(drops),
        )


@dataclass
class ChaosMonkey:
    """Runtime consumer of a :class:`ChaosPlan` (thread-safe).

    One monkey serves one service instance: the worker pool calls
    :meth:`chunk_fault` per dispatch, the TCP server calls
    :meth:`drop_connection` per accepted connection.  ``kills``/
    ``delays``/``drops`` count the faults actually injected, for test
    assertions and the soak report.
    """

    plan: ChaosPlan
    kills: int = 0
    delays: int = 0
    drops: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _chunk_seq: itertools.count = field(
        default_factory=itertools.count, repr=False
    )
    _conn_seq: itertools.count = field(
        default_factory=itertools.count, repr=False
    )
    #: the scheduler's pid, so a worker can tell process from thread mode
    parent_pid: int = field(default_factory=os.getpid, repr=False)

    def chunk_fault(self) -> dict | None:
        """The fault (if any) for the next chunk dispatch, as the plain
        dict ``run_slab_chunk`` executes (``spec["chaos"]``)."""
        with self._lock:
            index = next(self._chunk_seq)
            if index in self.plan.kill_chunks:
                self.kills += 1
                return {
                    "action": "kill",
                    "parent_pid": self.parent_pid,
                    "index": index,
                }
            if index in self.plan.delay_chunks:
                self.delays += 1
                return {
                    "action": "delay",
                    "delay_s": self.plan.delay_s,
                    "index": index,
                }
            return None

    def drop_connection(self) -> bool:
        """True when the next accepted TCP connection should be dropped
        without a response."""
        with self._lock:
            index = next(self._conn_seq)
            if index in self.plan.drop_connections:
                self.drops += 1
                return True
            return False


def apply_chunk_fault(chaos: dict) -> None:
    """Execute an injected fault inside ``run_slab_chunk`` (worker side).

    ``kill`` in a forked worker is a hard ``os._exit`` — the executor
    observes a dead process exactly as a real crash; in a thread worker it
    raises :class:`WorkerCrashError` instead (threads cannot die alone).
    ``delay`` just sleeps, modelling a stuck dependency.
    """
    action = chaos.get("action")
    if action == "delay":
        time.sleep(float(chaos.get("delay_s", 0.0)))
    elif action == "kill":
        if os.getpid() != chaos.get("parent_pid"):
            os._exit(70)  # hard worker death, bypassing atexit/finally
        raise WorkerCrashError(
            f"chaos: worker killed at dispatch {chaos.get('index')}"
        )
    else:
        raise ValueError(f"unknown chaos action {action!r}")
