#!/usr/bin/env python3
"""The soft-IP hand-off: what an integrator receives and how they check it.

"The core is soft in nature i.e., a gate-level netlist is provided which
can be readily integrated with the user's system."  This example plays both
sides of that hand-off for the GA-core datapath:

vendor side:
    flatten -> insert scan chain -> lint -> export to the structural
    netlist format -> generate scan test vectors + coverage report
    -> estimate resources and power;

integrator side:
    parse the delivered netlist -> re-lint -> verify the scan chain
    round-trips -> re-run the delivered test vectors and confirm the
    coverage claim.

Both sides fault-simulate the FULL ~10k stuck-at fault universe of the
flattened core — no sampling.  The bit-parallel PPSFP engine
(`repro.hdl.bitsim` + `repro.hdl.faults`) makes the unsampled run cheaper
than the old 400-fault sampled estimate was on the serial simulator.
"""

import os

import numpy as np

from repro.analysis.power import estimate_power
from repro.analysis.resources import estimate_netlist
from repro.hdl.export import lint, read_netlist, write_netlist
from repro.hdl.faults import enumerate_faults, fault_simulate, generate_tests
from repro.hdl.flatten import flatten_ga_datapath
from repro.hdl.scan import Stepper, insert_scan_chain, scan_dump, scan_load

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"


def vendor_side() -> tuple[str, list, float]:
    print("== vendor: packaging the soft IP ==")
    core = flatten_ga_datapath()
    chain = insert_scan_chain(core)
    problems = lint(core)
    assert not problems, problems
    print(f"flattened: {core.stats()['gates']} gates, "
          f"{core.stats()['dff']} registers, scan chain {chain} bits, lint clean")

    # Full-universe ATPG: every enumerable stuck-at fault is targeted.
    universe = len(enumerate_faults(core))
    vectors, coverage = generate_tests(core,
                                       target_coverage=0.30 if FAST else 0.70,
                                       max_vectors=8 if FAST else 64, seed=5)
    print(f"scan test set: {coverage.vectors_used} vectors, "
          f"{100 * coverage.coverage:.1f}% stuck-at coverage "
          f"over the full {universe}-fault universe (unsampled)")

    est = estimate_netlist(core)
    rng = np.random.default_rng(2)
    stimulus = [
        {n: int(rng.integers(0, 1 << len(nets))) for n, nets in core.inputs.items()}
        for _ in range(20)
    ]
    power = estimate_power(core, stimulus)
    print(f"datasheet: ~{est.luts} LUTs, Fmax {est.max_frequency_mhz:.1f} MHz, "
          f"{power.total_mw:.2f} mW at 50 MHz\n")

    return write_netlist(core), vectors, coverage.coverage


def integrator_side(netlist_text: str, vectors, claimed_coverage: float) -> None:
    print("== integrator: incoming inspection ==")
    core = read_netlist(netlist_text)
    print(f"parsed delivery: {len(netlist_text.splitlines())} netlist lines, "
          f"{core.stats()['gates']} gates")
    assert lint(core) == [], "delivered netlist fails lint"
    print("lint: clean")

    stepper = Stepper(core)
    held = {n: 0 for n in core.inputs if n not in ("test", "scanin")}
    image = [(i * 5) % 2 for i in range(len(core.dffs))]
    scan_load(stepper, image, **held)
    assert scan_dump(stepper, **held) == image
    print(f"scan chain: {len(core.dffs)}-bit load/dump round-trip OK")

    report = fault_simulate(core, vectors)
    print(f"replayed vendor vectors: {100 * report.coverage:.1f}% coverage "
          f"on the full {report.total_faults}-fault universe "
          f"(claimed {100 * claimed_coverage:.1f}%)")
    assert report.coverage >= claimed_coverage - 1e-9
    print("\nIP accepted.")


if __name__ == "__main__":
    text, vectors, coverage = vendor_side()
    integrator_side(text, vectors, coverage)
