"""Experiment harness — cache-warm repeat sweeps vs cold execution.

The harness claim: because every repeat is a content-addressed request,
re-running an experiment against the same store serves the entire sweep
from cache.  Measured and asserted:

* **Warm sweep**: the second `Experiment.run` over an existing store
  completes >= 10x faster than the cold run that populated it, with
  bit-identical per-row outcomes.

The sweep itself is a real multi-scenario, multi-repeat experiment (two
sequential-logic workloads x 3 repeats) pushed through the full
service + store + summary-writing path both times, so the ratio prices
the whole harness, not just the store lookup.
"""

import json
import time

import pytest

from conftest import print_table
from repro.core.params import GAParameters
from repro.experiments.harness import Experiment, Scenario
from repro.fitness.functions import by_name
from repro.service import GARequest

NB_REPEATS = 3
MIN_WARM_SPEEDUP = 10.0


def _sweep() -> Experiment:
    def scenario(name, fitness, seed):
        return Scenario(
            name=name,
            request=GARequest(
                params=GAParameters(
                    n_generations=192, population_size=32,
                    crossover_threshold=10, mutation_threshold=2,
                    rng_seed=seed,
                ),
                fitness_name=fitness,
            ),
        )

    return Experiment(
        name="bench-sweep",
        scenarios=(
            scenario("counter", "seq_counter4", 0x2961),
            scenario("detector", "seq_detect101", 0x061F),
        ),
        nb_repeats=NB_REPEATS,
    )


@pytest.mark.benchmark(group="experiments")
def test_experiment_repeat_sweep_cache_speedup(benchmark, tmp_path):
    exp = _sweep()
    for scenario in exp.scenarios:
        by_name(scenario.request.fitness_name).table()
    store_dir = tmp_path / "store"

    t0 = time.perf_counter()
    cold = exp.run(tmp_path / "cold", store_dir=store_dir)
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = exp.run(tmp_path / "warm", store_dir=store_dir)
    t_warm = time.perf_counter() - t0

    n_jobs = len(exp.scenarios) * NB_REPEATS
    assert len(cold.rows) == len(warm.rows) == n_jobs
    assert not any(row["cache_hit"] for row in cold.rows)
    assert all(row["cache_hit"] for row in warm.rows)

    def outcomes(result):
        return [
            (r["scenario"], r["repeat"], r["rng_seed"],
             r["best_fitness"], r["best_individual"], r["store_key"])
            for r in result.rows
        ]

    assert outcomes(cold) == outcomes(warm)
    # the warm run still writes a full results/summary triple
    for leaf in ("results.jsonl", "summary.json", "summary.md"):
        assert (tmp_path / "warm" / exp.name / leaf).exists()

    speedup = t_cold / t_warm
    benchmark.extra_info["warm_speedup"] = round(speedup, 1)
    benchmark.extra_info["cold_sweep_s"] = round(t_cold, 4)
    benchmark.extra_info["warm_sweep_s"] = round(t_warm, 4)
    benchmark.extra_info["jobs"] = n_jobs
    benchmark.pedantic(
        lambda: exp.run(tmp_path / "timed", store_dir=store_dir),
        rounds=3,
        iterations=1,
    )

    summary = json.loads(
        (tmp_path / "warm" / exp.name / "summary.json").read_text()
    )
    rows = [
        {"path": f"cold sweep ({n_jobs} jobs)",
         "time_s": round(t_cold, 4), "speedup": "1.0x"},
        {"path": "cache-warm sweep",
         "time_s": round(t_warm, 4), "speedup": f"{speedup:.1f}x"},
    ]
    print_table("experiment harness repeat sweep", rows)
    for name, agg in summary["scenarios"].items():
        print(f"{name}: best {agg['best_fitness']} "
              f"over {agg['repeats']} repeats, "
              f"cache hits {agg['cache_hits']}")

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm sweep only {speedup:.1f}x over cold "
        f"(need >= {MIN_WARM_SPEEDUP}x)"
    )
