"""Equivalence tests: structural RTL blocks vs. Python integer semantics.

This is the analogue of the paper's gate-level NC-Verilog verification: the
flattened netlists must compute exactly what the behavioural model computes.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.hdl import rtlib
from repro.hdl.scan import Stepper

u16 = st.integers(0, 0xFFFF)
u4 = st.integers(0, 0xF)


class TestAdder:
    @given(u16, u16)
    def test_adder16(self, a, b):
        nl = rtlib.build_adder(16)
        out = nl.evaluate({"a": a, "b": b})
        total = a + b
        assert out["sum"] == total & 0xFFFF
        assert out["cout"] == total >> 16

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_adder32(self, a, b):
        nl = rtlib.build_adder(32)
        out = nl.evaluate({"a": a, "b": b})
        assert out["sum"] == (a + b) & 0xFFFFFFFF


class TestComparator:
    @given(u16, u16)
    def test_lt_eq(self, a, b):
        nl = rtlib.build_comparator(16)
        out = nl.evaluate({"a": a, "b": b})
        assert out["lt"] == int(a < b)
        assert out["eq"] == int(a == b)

    @given(u4, u4)
    def test_threshold_comparator_4bit(self, rand, threshold):
        # The crossover/mutation decision: perform iff rand < threshold.
        nl = rtlib.build_comparator(4)
        out = nl.evaluate({"a": rand, "b": threshold})
        assert out["lt"] == int(rand < threshold)


class TestCrossoverUnit:
    @given(u16, u16, u4)
    def test_matches_mask_semantics(self, p1, p2, cut):
        nl = rtlib.build_crossover_unit(16)
        out = nl.evaluate({"p1": p1, "p2": p2, "cut": cut})
        mask = (1 << cut) - 1
        assert out["off1"] == (p1 & mask) | (p2 & ~mask & 0xFFFF)
        assert out["off2"] == (p2 & mask) | (p1 & ~mask & 0xFFFF)

    @given(u16, u16, u4)
    def test_offspring_preserve_multiset_of_bits(self, p1, p2, cut):
        # Crossover permutes bit positions between parents: at every
        # position the pair {off1[i], off2[i]} == {p1[i], p2[i]}.
        nl = rtlib.build_crossover_unit(16)
        out = nl.evaluate({"p1": p1, "p2": p2, "cut": cut})
        for i in range(16):
            parents = {(p1 >> i) & 1, (p2 >> i) & 1}
            offspring = {(out["off1"] >> i) & 1, (out["off2"] >> i) & 1}
            assert parents == offspring

    def test_cut_zero_swaps_parents(self):
        nl = rtlib.build_crossover_unit(16)
        out = nl.evaluate({"p1": 0xAAAA, "p2": 0x5555, "cut": 0})
        assert out["off1"] == 0x5555 and out["off2"] == 0xAAAA


class TestMutationUnit:
    @given(u16, u4)
    def test_flips_exactly_one_bit_when_enabled(self, ind, point):
        nl = rtlib.build_mutation_unit(16)
        out = nl.evaluate({"ind": ind, "point": point, "en": 1})
        assert out["out"] == ind ^ (1 << point)

    @given(u16, u4)
    def test_passthrough_when_disabled(self, ind, point):
        nl = rtlib.build_mutation_unit(16)
        out = nl.evaluate({"ind": ind, "point": point, "en": 0})
        assert out["out"] == ind


class TestCARNGBlock:
    def test_matches_python_ca_step(self):
        from repro.rng.cellular_automaton import ca_step

        nl = rtlib.build_ca_rng(16, rule_vector=0x6C04)
        stepper = Stepper(nl)
        seed = 0xACE1
        stepper.step(seed=seed, load=1, en=0)
        state = seed
        for _ in range(100):
            out = stepper.step(load=0, en=1)
            assert out["rn"] == state
            state = ca_step(state, 0x6C04, 16)

    def test_hold_when_not_enabled(self):
        nl = rtlib.build_ca_rng(16)
        stepper = Stepper(nl)
        stepper.step(seed=0x1234, load=1, en=0)
        for _ in range(3):
            out = stepper.step(load=0, en=0)
            assert out["rn"] == 0x1234


class TestCounterBlock:
    def test_count_and_clear(self):
        nl = rtlib.build_counter(8)
        stepper = Stepper(nl)
        for i in range(5):
            out = stepper.step(en=1, clear=0)
            assert out["q"] == i
        out = stepper.step(en=1, clear=1)
        assert out["q"] == 5  # clear lands on the next edge
        out = stepper.step(en=0, clear=0)
        assert out["q"] == 0


class TestParameterRegister:
    def test_load_and_hold(self):
        nl = rtlib.build_parameter_register(16)
        stepper = Stepper(nl)
        stepper.step(d=0xCAFE, load=1)
        out = stepper.step(d=0x0000, load=0)
        assert out["q"] == 0xCAFE
