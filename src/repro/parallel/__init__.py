"""Parallel GA extensions (the Sec. II-B acceleration direction).

The related-work section cites pipelined/parallel hardware GA architectures
[11]-[13]; the natural multi-core analogue of "several GA cores on one
fabric" is the island model: independent GA engines with periodic best-
individual migration.  :mod:`repro.parallel.islands` implements it over
``multiprocessing`` (no external dependencies), with a deterministic
single-process mode for tests.
"""

from repro.parallel.archipelago import (
    MigrationTopology,
    VectorIslandGA,
    build_topology,
    ring_topology,
    random_topology,
    torus_topology,
)
from repro.parallel.islands import IslandGA, IslandResult

__all__ = [
    "IslandGA",
    "IslandResult",
    "MigrationTopology",
    "VectorIslandGA",
    "build_topology",
    "ring_topology",
    "random_topology",
    "torus_topology",
]
