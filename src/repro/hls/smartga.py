"""The "Smart GA" fixed-parameter generator — the Chen et al. contrast.

Sec. II-B describes Chen et al.'s flow: a software tool "synthesizes a
custom GA netlist using these fixed GA parameter values", and the paper's
critique: "once an ASIC is obtained from a custom netlist, the GA
parameters cannot be changed ... the user then has to resynthesize the
entire GA netlist ... and re-design the entire ASIC."

This module makes both sides of that trade measurable:

* :func:`programmable_datapath` — the GA parameter/decision datapath with
  the five Table III values held in *registers* (the proposed core's way);
* :func:`fixed_datapath` — the same datapath with the values tied off as
  *constants* and run through constant propagation + dead-logic removal
  (the Smart-GA way), quantifying the area it saves;
* :func:`comparison` — area/FF/LUT deltas plus the cost of *changing* a
  parameter in each world: a ~tens-of-cycles initialization handshake vs. a
  full resynthesis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.params import GAParameters
from repro.hdl import rtlib
from repro.hdl.flatten import merge
from repro.hdl.netlist import Netlist
from repro.hdl.optimize import optimize
from repro.hdl.rtlib import const_word


def _parameter_decision_datapath(
    name: str, params: GAParameters | None
) -> Netlist:
    """The parameter-consuming slice of the GA core, wired end to end.

    Inputs: the 4-bit random fields and the loop counters' current values.
    Outputs: do_crossover / do_mutation decisions, generation/population
    comparisons, and the RNG seed bus.  When ``params`` is given, the five
    parameter values are constants; otherwise they come from loadable
    registers (with d/load ports exposed, as the init handshake drives).
    """
    nl = Netlist(name)

    def param_source(pname: str, width: int, value: int | None) -> list[int]:
        if value is not None:
            return const_word(nl, value, width)
        reg = rtlib.build_parameter_register(width)
        return merge(nl, reg, pname, expose_outputs=False)["q"]

    p = params
    xover_thr = param_source("crossover_threshold", 4,
                             p.crossover_threshold if p else None)
    mut_thr = param_source("mutation_threshold", 4,
                           p.mutation_threshold if p else None)
    n_gens = param_source("num_generations", 32, p.n_generations if p else None)
    pop_size = param_source("population_size", 8,
                            p.population_size & 0xFF if p else None)
    seed = param_source("rng_seed", 16, p.rng_seed if p else None)

    rand_x = nl.add_input("rand_xover", 4)
    rand_m = nl.add_input("rand_mut", 4)
    gen_count = nl.add_input("generation_index", 32)
    pop_count = nl.add_input("population_index", 8)

    nl.add_output("do_crossover", [rtlib.less_than(nl, rand_x, xover_thr)])
    nl.add_output("do_mutation", [rtlib.less_than(nl, rand_m, mut_thr)])
    nl.add_output("generations_done", [rtlib.equals(nl, gen_count, n_gens)])
    nl.add_output("population_full", [rtlib.equals(nl, pop_count, pop_size)])
    nl.add_output("seed", seed)
    return nl


def programmable_datapath() -> Netlist:
    """The proposed core's registered-parameter decision datapath."""
    return _parameter_decision_datapath("ga_params_programmable", None)


def fixed_datapath(params: GAParameters) -> Netlist:
    """The Smart-GA constant-parameter datapath, optimized."""
    raw = _parameter_decision_datapath("ga_params_fixed", params)
    return optimize(raw)


@dataclass
class SmartGAComparison:
    """Both sides of the programmability trade."""

    programmable_stats: dict
    fixed_stats: dict
    gate_saving_pct: float
    ff_saving: int
    reprogram_cycles: int
    resynthesis_seconds: float

    def rows(self) -> list[dict]:
        return [
            {
                "approach": "proposed core (registers)",
                "gates": self.programmable_stats["gates"],
                "FFs": self.programmable_stats["dff"],
                "change a parameter": f"{self.reprogram_cycles} GA cycles "
                f"({self.reprogram_cycles / 50e3:.3f} ms @50MHz)",
            },
            {
                "approach": "Smart GA (constants)",
                "gates": self.fixed_stats["gates"],
                "FFs": self.fixed_stats["dff"],
                "change a parameter": f"full resynthesis "
                f"({1e3 * self.resynthesis_seconds:.1f} ms here; a new ASIC "
                "in silicon)",
            },
        ]


def measure_reprogram_cycles(params: GAParameters) -> int:
    """GA cycles the initialization handshake takes against the real core."""
    from repro.core.ga_core import GACore
    from repro.core.init_module import InitializationModule
    from repro.core.ports import GAPorts
    from repro.hdl.simulator import Simulator

    ports = GAPorts.create()
    core = GACore(ports)
    init = InitializationModule(ports, params)
    sim = Simulator()
    sim.add(core)
    sim.add(init)
    return sim.run_until(lambda: init.done, 10_000)


def comparison(params: GAParameters | None = None) -> SmartGAComparison:
    """Run the full programmable-vs-fixed comparison."""
    params = params or GAParameters(64, 64, 10, 1, 0x061F)
    prog = programmable_datapath()
    t0 = time.perf_counter()
    fixed = fixed_datapath(params)
    resynth = time.perf_counter() - t0
    prog_stats, fixed_stats = prog.stats(), fixed.stats()
    return SmartGAComparison(
        programmable_stats=prog_stats,
        fixed_stats=fixed_stats,
        gate_saving_pct=100 * (1 - fixed_stats["gates"] / prog_stats["gates"]),
        ff_saving=prog_stats["dff"] - fixed_stats["dff"],
        reprogram_cycles=measure_reprogram_cycles(params),
        resynthesis_seconds=resynth,
    )
