"""Lookup-table fitness evaluation modules (the paper's FPGA approach).

"In the lookup-based fitness computation method, block ROMs within the FPGA
device are populated with the fitness values corresponding to each solution
encoding" (Sec. IV-B).  :class:`FitnessLookupROM` builds that ROM image from
any :class:`~repro.fitness.base.FitnessFunction`; :class:`LookupFEM` is the
cycle-accurate FEM component that serves the two-way handshake out of it
with the one-cycle block-ROM read latency.
"""

from __future__ import annotations

import numpy as np

from repro.fitness.base import FitnessFunction
from repro.fitness.mux import FEMInterface
from repro.hdl.component import Component
from repro.hdl.memory import BRAM_BITS


class FitnessLookupROM:
    """Block-ROM image of a fitness function (65,536 x 16-bit words)."""

    def __init__(self, fn: FitnessFunction):
        self.fn = fn
        self.contents: np.ndarray = fn.table()

    @property
    def depth(self) -> int:
        return len(self.contents)

    @property
    def width(self) -> int:
        return 16

    def storage_bits(self) -> int:
        """ROM footprint in bits (1 Mb for a full 16-bit encoding)."""
        return self.depth * self.width

    def bram_count(self) -> int:
        """18 Kb block-RAM primitives needed on the Virtex-II Pro."""
        return -(-self.storage_bits() // BRAM_BITS)

    def __getitem__(self, chromosome: int) -> int:
        return int(self.contents[chromosome & 0xFFFF])


class LookupFEM(Component):
    """Lookup-based fitness evaluation module with handshake FSM.

    Protocol (Sec. III-B.7): the GA core places the individual on the
    candidate bus and asserts ``fit_request``; this module reads the
    candidate, looks the fitness up (one ROM cycle), places it on
    ``fit_value`` and asserts ``fit_valid``; the core latches and de-asserts
    ``fit_request``; the module then de-asserts ``fit_valid``.
    """

    def __init__(self, name: str, iface: FEMInterface, fn: FitnessFunction):
        super().__init__(name)
        self.iface = iface
        self.rom = FitnessLookupROM(fn)
        self.state = "IDLE"
        self.latched = 0
        self.evaluations = 0
        #: Fault knobs for SEU campaigns (repro.resilience.seu): a dead
        #: module stops answering entirely (its handshake drops); a
        #: non-zero ``corrupt_next`` is XORed into exactly one response.
        self.dead = False
        self.corrupt_next = 0

    def clock(self) -> None:
        if self.dead:
            return
        io = self.iface
        if self.state == "IDLE":
            if io.fit_request.value:
                # Latch the candidate; the ROM read takes the next cycle.
                self.set_state(state="LOOKUP", latched=io.candidate.value)
        elif self.state == "LOOKUP":
            value = (self.rom[self.latched] ^ self.corrupt_next) & 0xFFFF
            self.corrupt_next = 0
            self.drive(io.fit_value, value)
            self.drive(io.fit_valid, 1)
            self.set_state(state="HOLD", evaluations=self.evaluations + 1)
        elif self.state == "HOLD":
            if not io.fit_request.value:
                self.drive(io.fit_valid, 0)
                self.set_state(state="IDLE")

    def reset(self) -> None:
        super().reset()
        self.state = "IDLE"
        self.latched = 0
        self.evaluations = 0
        self.dead = False
        self.corrupt_next = 0
        self.iface.fit_valid.reset()
        self.iface.fit_value.reset()
