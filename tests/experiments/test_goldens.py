"""Golden-run regression suite: every committed zoo golden replays bit-identically.

Each golden under ``src/repro/experiments/goldens/`` pins one scenario's
repeat-0 run: the request, its content-addressed store key, the full
deterministic result, and the result's canonical digest.  These tests
re-execute every scenario through the ``repro replay`` machinery and
assert byte-identity — across the exact engine, the turbo engine, the
archipelago, the cycle-accurate testbench, and the dual-core 32-bit
substrate.  Any engine change that moves a single bit of any zoo
workload's outcome fails here (and the failure artifact names the field).
"""

import hashlib
import json

import pytest

from repro.experiments.zoo import (
    GOLDEN_SCHEMA_VERSION,
    SCENARIOS,
    golden_path,
    make_golden,
)
from repro.service.jobs import GARequest, JobResult
from repro.store.keys import (
    canonical_json,
    canonical_result_dict,
    job_key,
    results_identical,
)
from repro.store.replay import execute_request, replay
from repro.store.runstore import RunStore


def load_golden(name: str) -> dict:
    path = golden_path(name)
    assert path.exists(), (
        f"missing committed golden {path}; regenerate with "
        "`python -m repro.experiments.zoo`"
    )
    return json.loads(path.read_text())


def test_every_scenario_has_a_committed_golden():
    for name in SCENARIOS:
        golden = load_golden(name)
        assert golden["schema"] == GOLDEN_SCHEMA_VERSION
        assert golden["scenario"] == name


def test_goldens_have_no_stray_files():
    committed = {p.stem for p in golden_path("x").parent.glob("*.json")}
    assert committed == set(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_replays_bit_identically(name):
    golden = load_golden(name)
    scenario = SCENARIOS[name]
    request = GARequest.from_dict(golden["request"])

    # the committed request is the scenario's request (zoo drift guard)
    assert request == scenario.request
    # the committed key matches the live key schema
    assert golden["store_key"] == job_key(request)

    fresh = execute_request(request)
    stored = JobResult.from_dict(golden["result"])
    assert results_identical(fresh, stored), (
        f"zoo scenario {name!r} no longer reproduces its committed golden"
    )
    assert fresh.best_fitness == stored.best_fitness
    assert fresh.best_individual == stored.best_individual

    digest = hashlib.sha256(
        canonical_json(canonical_result_dict(fresh)).encode()
    ).hexdigest()
    assert digest == golden["result_digest"]


@pytest.mark.parametrize("name", ["seq-counter", "seq-counter-turbo", "seq-archipelago"])
def test_golden_through_repro_replay(tmp_path, name):
    """The CLI path: seed a store with the golden, `repro replay` it."""
    golden = load_golden(name)
    request = GARequest.from_dict(golden["request"])
    store = RunStore(tmp_path / "store")
    store.put(request, JobResult.from_dict(golden["result"]), source="golden")

    report = replay(store, golden["store_key"])
    assert report.identical, report.mismatched_fields
    assert report.verdict == "bit-identical"


def test_make_golden_is_deterministic():
    scenario = SCENARIOS["seq-counter"]
    assert make_golden(scenario) == make_golden(scenario)


def test_substrate_goldens_carry_substrate_stats():
    cycle = load_golden("seq-cycle")
    assert cycle["result"]["substrate_stats"]["substrate"] == "cycle"
    assert cycle["result"]["substrate_stats"]["cycles"] > 0
    dual = load_golden("mux6-dual32")
    assert dual["result"]["substrate_stats"] == {
        "substrate": "dual32",
        "width": 32,
    }
    # 32-bit champion actually uses the upper half
    assert dual["result"]["best_individual"] > 0xFFFF
