"""Repro replay: re-execute a store entry and verify bit-identity.

``execute_request`` is the store's cold-compute path: it runs one
:class:`~repro.service.jobs.GARequest` locally through the *same*
stateless chunk executor the serving layer's workers use
(:func:`repro.service.workers.run_slab_chunk`), folded through the same
slab bookkeeping — so the produced :class:`~repro.service.jobs.JobResult`
is bit-identical to what the service would stream back for the same
request (chunking is invisible by the serving layer's splice contract,
property-tested in ``tests/service/test_determinism.py``).

``replay_entry`` is the reproducibility discipline on top: given a store
entry, re-execute its recorded request from scratch and assert the fresh
result's deterministic content is byte-identical to the stored one —
the experiment-replay workflow surfaced as ``repro replay <key>``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.store.keys import (
    canonical_json,
    canonical_result_dict,
    job_key,
    results_identical,
)
from repro.store.runstore import RunStore, StoreEntry


def execute_request(request, job_id: int = 0):
    """Cold-compute one request locally; returns its canonical JobResult.

    The run rides one full-length slab chunk (execution timings and chunk
    counts are execution provenance, not result content — the
    deterministic fields match the service's output bit for bit).
    """
    from repro.service.batcher import BatchPolicy, JobRecord, Slab
    from repro.service.jobs import JobHandle
    from repro.service.workers import run_slab_chunk

    record = JobRecord(
        job_id=job_id,
        request=request,
        handle=JobHandle(job_id, request, 0.0),
        submitted_at=0.0,
        seq=0,
    )
    policy = BatchPolicy(
        max_batch=1, admit_interval=request.params.n_generations
    )
    slab = Slab([record], policy)
    chunk = slab.next_chunk_gens()
    out = run_slab_chunk(slab.make_spec(chunk))
    finished = slab.apply_chunk(out, chunk)
    assert finished == [record] and not slab.entries
    return record.to_result(completed_at=record.submitted_at)


@dataclass
class ReplayReport:
    """Outcome of re-executing one store entry."""

    key: str
    identical: bool
    stored_best: int
    replayed_best: int
    compute_s: float
    #: first differing canonical field names (empty when identical)
    mismatched_fields: list[str]

    @property
    def verdict(self) -> str:
        return "bit-identical" if self.identical else "MISMATCH"


def replay_entry(entry: StoreEntry) -> ReplayReport:
    """Re-execute one entry's request; compare against its stored result."""
    t0 = time.perf_counter()
    fresh = execute_request(entry.request, job_id=entry.result.job_id)
    compute_s = time.perf_counter() - t0
    stored = canonical_result_dict(entry.result)
    replayed = canonical_result_dict(fresh)
    mismatched = [
        field
        for field in sorted(set(stored) | set(replayed))
        if canonical_json({field: stored.get(field)})
        != canonical_json({field: replayed.get(field)})
    ]
    return ReplayReport(
        key=entry.key,
        identical=results_identical(entry.result, fresh),
        stored_best=entry.result.best_fitness,
        replayed_best=fresh.best_fitness,
        compute_s=compute_s,
        mismatched_fields=mismatched,
    )


def replay(store: RunStore, key: str) -> ReplayReport:
    """Load one entry by key and replay it (KeyError on a miss)."""
    entry = store.get(key)
    if entry is None:
        raise KeyError(
            f"no readable store entry {key!r} in {store.root} "
            f"({len(store)} entries present)"
        )
    return replay_entry(entry)


def run_cached(store: RunStore, request, use_cache: bool = True):
    """The ``repro run --store-dir`` path: serve a hit, else compute and
    write back.  Returns ``(result, cache_hit, key)``."""
    key = job_key(request)
    if use_cache:
        cached = store.get_result(key)
        if cached is not None:
            cached.cache_hit = True
            cached.store_key = key
            return cached, True, key
    t0 = time.perf_counter()
    result = execute_request(request)
    compute_s = time.perf_counter() - t0
    store.put(request, result, compute_s=compute_s, source="cli.run")
    result.store_key = key
    return result, False, key
