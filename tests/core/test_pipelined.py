"""Tests for the pipelined-core timing model (the future-work direction)."""

import pytest

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.core.pipelined import PipelinedGA, PipelineTimingModel, StageLatencies
from repro.core.system import GASystem
from repro.fitness import F3, MBF6_2


def params(**overrides):
    base = dict(
        n_generations=8,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestSequentialCalibration:
    @pytest.mark.parametrize("pop,gens", [(16, 8), (32, 8)])
    def test_prediction_tracks_measured_core(self, pop, gens):
        # The analytical sequential model must land within 15% of the real
        # cycle-accurate core — that anchor is what makes the pipelined
        # prediction credible.
        p = params(population_size=pop, n_generations=gens)
        measured = GASystem(p, F3()).run().cycles
        predicted = PipelineTimingModel().sequential_cycles(p)
        assert predicted == pytest.approx(measured, rel=0.15)


class TestPipelinePrediction:
    def test_pipelining_always_helps(self):
        model = PipelineTimingModel()
        p = params(population_size=32, n_generations=32)
        assert model.pipelined_cycles(p) < model.sequential_cycles(p)

    def test_roulette_scan_is_the_bottleneck(self):
        # With roulette selection the scan dominates the initiation
        # interval, capping the speedup well below the stage count.
        model = PipelineTimingModel()
        p = params(population_size=32, n_generations=32)
        assert 1.0 < model.speedup(p, "roulette") < 2.0

    def test_tournament_unlocks_the_pipeline(self):
        # Constant-latency tournament selection (the [8] architecture)
        # makes evaluation the interval: several-fold speedup.
        model = PipelineTimingModel()
        p = params(population_size=32, n_generations=32)
        assert model.speedup(p, "tournament") > 3.0
        assert model.speedup(p, "tournament") > model.speedup(p, "roulette")

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            PipelineTimingModel().pipelined_cycles(params(), "rank")

    def test_estimate_rows(self):
        rows = PipelineTimingModel().estimate(params())
        assert len(rows) == 3
        assert rows[0].cycles >= rows[1].cycles >= rows[2].cycles

    def test_custom_latencies(self):
        # With a slow FEM (real intrinsic EHW measurements), evaluation is
        # the interval for *both* organisations: a single-FEM pipeline can
        # hide the selection scan but not the measurement itself, so the
        # speedup collapses toward 1 — you'd replicate FEMs instead.
        slow_fem = PipelineTimingModel(StageLatencies(evaluation=1000))
        fast_fem = PipelineTimingModel(StageLatencies(evaluation=6))
        p = params(population_size=32)
        assert slow_fem.speedup(p, "roulette") < fast_fem.speedup(p, "roulette")
        assert slow_fem.speedup(p, "roulette") == pytest.approx(1.0, abs=0.1)


class TestPipelinedGA:
    def test_results_identical_to_sequential(self):
        p = params()
        pipelined = PipelinedGA(p, MBF6_2()).run()
        sequential = BehavioralGA(p, MBF6_2()).run()
        assert pipelined.best_individual == sequential.best_individual
        assert [g.as_tuple() for g in pipelined.history] == [
            g.as_tuple() for g in sequential.history
        ]

    def test_cycles_use_pipeline_model(self):
        p = params()
        result = PipelinedGA(p, F3()).run()
        assert result.cycles == PipelineTimingModel().pipelined_cycles(p)
        assert result.runtime_seconds is not None
