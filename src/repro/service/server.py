"""GA-as-a-service front ends: the in-process facade and a TCP server.

:class:`GAService` is the embeddable form — construct, ``start()``,
``submit()`` :class:`~repro.service.jobs.GARequest` objects, read
``metrics``.  It wires the policy, metrics, worker pool, and scheduler
together and owns their lifecycle (it is also a context manager; leaving
the block drains and shuts down).

The TCP layer is a deliberately tiny JSON-lines protocol for the
``repro serve`` / ``repro submit`` CLI pair: one request object per line,
one response line back.  Ops: ``submit`` (blocks until the job's result
streams back), ``metrics`` (snapshot), ``ping``.  It is a front door for
the scheduler, not a message bus — every connection is handled by a
thread that parks in ``JobHandle.result()``, so the batching and
backpressure semantics are exactly the in-process ones.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading

from repro.service.batcher import BatchPolicy
from repro.service.jobs import (
    GARequest,
    JobHandle,
    JobResult,
    ServiceError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import Scheduler
from repro.service.workers import WorkerPool


class GAService:
    """The embeddable GA serving stack: pool + scheduler + metrics."""

    def __init__(
        self,
        workers: int = 2,
        mode: str = "thread",
        policy: BatchPolicy | None = None,
    ):
        self.policy = policy or BatchPolicy()
        self.metrics = ServiceMetrics(max_batch=self.policy.max_batch)
        self.pool = WorkerPool(workers, mode)
        self.scheduler = Scheduler(self.pool, self.policy, self.metrics)

    def start(self) -> "GAService":
        self.scheduler.start()
        return self

    def submit(self, request: GARequest) -> JobHandle:
        return self.scheduler.submit(request)

    def run_all(
        self, requests: list[GARequest], timeout: float | None = None
    ) -> list[JobResult]:
        """Submit a burst and block for every result, in request order."""
        handles = [self.submit(request) for request in requests]
        return [handle.result(timeout) for handle in handles]

    def snapshot(self) -> dict:
        return self.metrics.snapshot()

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        self.scheduler.shutdown(drain=drain, timeout=timeout)
        self.pool.shutdown()

    def __enter__(self) -> "GAService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)


# ---------------------------------------------------------------------------
# TCP front end (JSON lines)
# ---------------------------------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one request line, one response line
        server: ServiceTCPServer = self.server  # type: ignore[assignment]
        line = self.rfile.readline()
        if not line.strip():
            return
        try:
            message = json.loads(line)
            response = server.dispatch(message)
        except ServiceError as exc:
            response = {"ok": False, "error": type(exc).__name__, "detail": str(exc)}
        except Exception as exc:  # malformed input must not kill the server
            response = {"ok": False, "error": "BadRequest", "detail": str(exc)}
        self.wfile.write((json.dumps(response) + "\n").encode())


class ServiceTCPServer(socketserver.ThreadingTCPServer):
    """JSON-lines TCP front door over one :class:`GAService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: GAService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_jobs: int | None = None,
    ):
        super().__init__((host, port), _Handler)
        self.service = service
        self.max_jobs = max_jobs
        self._served = 0
        self._served_lock = threading.Lock()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def dispatch(self, message: dict) -> dict:
        op = message.get("op", "submit")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "metrics":
            return {"ok": True, "metrics": self.service.snapshot()}
        if op == "submit":
            request = GARequest.from_dict(message["job"])
            handle = self.service.submit(request)
            result = handle.result(timeout=message.get("timeout_s"))
            self._count_served()
            return {"ok": True, "result": result.to_dict()}
        return {"ok": False, "error": "BadRequest", "detail": f"unknown op {op!r}"}

    def _count_served(self) -> None:
        if self.max_jobs is None:
            return
        with self._served_lock:
            self._served += 1
            done = self._served >= self.max_jobs
        if done:
            # shutdown() must come from outside the serve_forever thread
            threading.Thread(target=self.shutdown, daemon=True).start()


def serve(
    service: GAService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_jobs: int | None = None,
    ready_callback=None,
) -> None:
    """Run the TCP front end until interrupted (or ``max_jobs`` served).

    ``ready_callback(host, port)`` fires once the socket is bound — the
    CLI prints the endpoint there, and tests learn the ephemeral port.
    """
    with ServiceTCPServer(service, host, port, max_jobs) as server:
        if ready_callback is not None:
            ready_callback(*server.endpoint)
        try:
            server.serve_forever(poll_interval=0.05)
        except KeyboardInterrupt:
            pass


def call(host: str, port: int, message: dict, timeout: float | None = None) -> dict:
    """One JSON-lines round trip to a running server."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps(message) + "\n").encode())
        with sock.makefile("r", encoding="utf-8") as reader:
            line = reader.readline()
    if not line:
        raise ServiceError("server closed the connection without a response")
    return json.loads(line)


def submit_remote(
    host: str, port: int, request: GARequest, timeout: float | None = None
) -> JobResult:
    """Client side of ``repro submit``: send one job, wait for its result."""
    response = call(
        host, port,
        {"op": "submit", "job": request.to_dict(), "timeout_s": timeout},
        timeout=timeout,
    )
    if not response.get("ok"):
        raise ServiceError(
            f"{response.get('error', 'ServiceError')}: "
            f"{response.get('detail', 'remote submission failed')}"
        )
    return JobResult.from_dict(response["result"])
