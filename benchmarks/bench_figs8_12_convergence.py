"""Figs. 8-12 — RT-simulation convergence scatter plots.

Regenerates the per-generation population-fitness scatter for Table V runs
#3, #4, #5 (BF6), #6 (F2), #10 (F3) and renders each as ASCII.  The five
behavioural runs execute as one batched sweep (mixed fitness functions, one
replica per figure) with per-member recording for the scatter data.
"""

import pytest

from repro.analysis.plots import ascii_plot
from repro.experiments.figures import run_rt_convergence_figures


@pytest.mark.benchmark(group="figs8-12")
def test_figs_8_to_12_scatter(benchmark):
    report = benchmark.pedantic(
        run_rt_convergence_figures, kwargs={"cycle_accurate": False},
        rounds=1, iterations=1,
    )
    for fig_id, fig in report["figures"].items():
        xs = [g for g, _f in fig["scatter"]]
        ys = [f for _g, f in fig["scatter"]]
        print(ascii_plot(xs, ys, label=f"{fig_id} ({fig['function']}, run #{fig['run']})"))

    figs = report["figures"]
    # Convergence shape: the spread of fitness values narrows as the
    # population converges ("the number of points will be decreased").
    for fig in figs.values():
        first_gen = [f for g, f in fig["scatter"] if g == 0]
        last_gen = [f for g, f in fig["scatter"] if g == 32]
        assert len(last_gen) <= len(first_gen) * 1.5
        assert max(last_gen) >= max(first_gen)  # elitism
    # Figs. 11-12 (simple functions) end near the optimum 3060.
    assert figs["Fig. 11"]["best"] >= 2900
    assert figs["Fig. 12"]["best"] >= 2900
