"""Smoke test: every script in examples/ imports and runs its fast path.

Each example is executed as a real subprocess (``python examples/x.py``)
with ``REPRO_EXAMPLES_FAST=1``, which the heavier scripts honor by
shrinking their workloads.  The test asserts a zero exit status and a
non-empty stdout — examples are documentation, so a silent pass is as
suspicious as a traceback.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 10


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLES_FAST"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
