"""Bit-identity of the batched sweep engine against serial runs.

The contract of :class:`repro.core.batch.BatchBehavioralGA` is strict: a
batch of N replicas must be indistinguishable — draw for draw — from N
independent :class:`BehavioralGA` runs.  The property test below checks
every observable at once: per-generation history, best individual and
fitness, FEM evaluation counts, final populations, RNG end states, and
RNG draw counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchBehavioralGA, run_batched
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness import BF6, F2, F3, MBF6_2, MBF7_2
from repro.rng.cellular_automaton import CellularAutomatonPRNG

FUNCTIONS = [BF6(), F2(), F3(), MBF6_2(), MBF7_2()]


def params(**overrides):
    base = dict(
        n_generations=8,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


def assert_batch_matches_loop(params_list, fitnesses, record_members=True):
    """Run the batch and the equivalent serial loop; compare everything."""
    batch = BatchBehavioralGA(
        params_list, fitnesses, record_members=record_members
    )
    batch_results = batch.run()
    for r, (p, fn) in enumerate(zip(params_list, fitnesses)):
        serial = BehavioralGA(p, fn, record_members=record_members)
        expect = serial.run()
        got = batch_results[r]
        assert got.best_individual == expect.best_individual
        assert got.best_fitness == expect.best_fitness
        assert got.evaluations == expect.evaluations
        assert got.fitness_name == expect.fitness_name
        assert [g.as_tuple() for g in got.history] == [
            g.as_tuple() for g in expect.history
        ]
        if record_members:
            assert [g.fitnesses for g in got.history] == [
                g.fitnesses for g in expect.history
            ]
        assert batch.final_populations[r].tolist() == serial.final_population.tolist()
        assert int(batch.rng_states[r]) == serial.rng.state
        assert int(batch.bank.draws[r]) == serial.rng.draws
    return batch_results


class TestBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        seeds=st.lists(st.integers(1, 0xFFFF), min_size=1, max_size=5),
        pop=st.sampled_from([2, 5, 8, 16]),
        gens=st.integers(1, 8),
        xt=st.integers(0, 15),
        mt=st.integers(0, 15),
        fn_idx=st.lists(st.integers(0, len(FUNCTIONS) - 1), min_size=1, max_size=5),
    )
    def test_batch_equals_serial_loop(self, seeds, pop, gens, xt, mt, fn_idx):
        params_list = [
            params(
                rng_seed=s,
                population_size=pop,
                n_generations=gens,
                crossover_threshold=xt,
                mutation_threshold=mt,
            )
            for s in seeds
        ]
        fns = [FUNCTIONS[fn_idx[i % len(fn_idx)]] for i in range(len(seeds))]
        assert_batch_matches_loop(params_list, fns)

    def test_mixed_thresholds_per_replica(self):
        # replicas in one batch may use different threshold classes
        params_list = [
            params(rng_seed=s, crossover_threshold=xt, mutation_threshold=mt)
            for s, xt, mt in [(45890, 10, 2), (10593, 12, 2), (1567, 0, 15), (7, 15, 0)]
        ]
        assert_batch_matches_loop(params_list, [BF6()] * 4)

    def test_extreme_thresholds(self):
        # crossover/mutation always on and always off
        for xt, mt in [(0, 0), (15, 15), (0, 15), (15, 0)]:
            params_list = [
                params(rng_seed=s, crossover_threshold=xt, mutation_threshold=mt)
                for s in (45890, 10593)
            ]
            assert_batch_matches_loop(params_list, [F3()] * 2)

    def test_single_replica(self):
        assert_batch_matches_loop([params()], [MBF6_2()])

    def test_initial_populations_match_serial_seeding(self):
        rng = CellularAutomatonPRNG(999)
        initial = rng.block(16).astype(np.int64)
        params_list = [params(rng_seed=s) for s in (45890, 10593)]
        batch = BatchBehavioralGA(params_list, BF6())
        batch_results = batch.run(initial=np.stack([initial, initial]))
        for r, p in enumerate(params_list):
            serial = BehavioralGA(p, BF6())
            expect = serial.run(initial=initial)
            got = batch_results[r]
            assert got.best_individual == expect.best_individual
            assert got.evaluations == expect.evaluations
            assert [g.as_tuple() for g in got.history] == [
                g.as_tuple() for g in expect.history
            ]
            assert int(batch.rng_states[r]) == serial.rng.state


class TestConstruction:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchBehavioralGA([], BF6())

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            BatchBehavioralGA(
                [params(), params(population_size=8)], BF6()
            )
        with pytest.raises(ValueError):
            BatchBehavioralGA(
                [params(), params(n_generations=4)], BF6()
            )

    def test_fitness_count_must_match_replicas(self):
        with pytest.raises(ValueError):
            BatchBehavioralGA([params(), params(rng_seed=2)], [BF6()])

    def test_bad_initial_shape_rejected(self):
        batch = BatchBehavioralGA([params(), params(rng_seed=2)], BF6())
        with pytest.raises(ValueError):
            batch.run(initial=np.zeros((2, 8), dtype=np.int64))


class TestRunBatched:
    def test_results_in_input_order_across_shape_groups(self):
        # jobs deliberately interleave two (gens, pop) groups and mixed
        # fitness functions; results must come back in input order and be
        # identical to the serial loop
        jobs = [
            (params(rng_seed=45890), BF6()),
            (params(rng_seed=10593, population_size=8, n_generations=4), F2()),
            (params(rng_seed=1567), F3()),
            (params(rng_seed=77, population_size=8, n_generations=4), BF6()),
        ]
        results = run_batched(jobs, record_members=True)
        for (p, fn), got in zip(jobs, results):
            expect = BehavioralGA(p, fn).run()
            assert got.best_individual == expect.best_individual
            assert got.best_fitness == expect.best_fitness
            assert got.evaluations == expect.evaluations
            assert got.params == p
            assert [g.as_tuple() for g in got.history] == [
                g.as_tuple() for g in expect.history
            ]

    def test_record_members_off_leaves_fitnesses_empty(self):
        results = run_batched([(params(), BF6())], record_members=False)
        assert all(g.fitnesses == [] for g in results[0].history)
