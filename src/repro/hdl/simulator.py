"""Synchronous multi-domain simulation kernel.

The kernel advances a global *tick* counter.  Each registered component has a
clock divider: a component with divider ``d`` and phase ``p`` sees a rising
edge on every tick where ``tick % d == p``.  This models the paper's setup of
a 50 MHz GA clock domain next to 200 MHz initialization/application modules
(divider 4 vs. divider 1), both derived from one on-board oscillator through
a digital clock manager.

On each tick the kernel:

1. calls ``clock()`` on every due component (all observe pre-edge values);
2. calls ``commit()`` on every due component (signal drives + state land);
3. invokes trace probes.

``run_until`` is the workhorse for protocol-driven tests ("step until
``GA_done`` is asserted").
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.hdl.component import Component
from repro.hdl.signal import Signal


class SimulationTimeout(RuntimeError):
    """Raised when ``run_until`` exhausts its cycle budget."""


class Simulator:
    """Owner of the global clock and the component schedule."""

    def __init__(self) -> None:
        self._schedule: list[tuple[Component, int, int]] = []
        self._probes: list[Callable[[int], None]] = []
        self.time: int = 0

    # ------------------------------------------------------------------
    def add(self, component: Component, divider: int = 1, phase: int = 0) -> Component:
        """Register a component in a clock domain.

        ``divider=1`` is the fast (base) domain; ``divider=4`` models the
        50 MHz GA domain when the base tick is 200 MHz.
        """
        if divider < 1:
            raise ValueError("divider must be >= 1")
        if not 0 <= phase < divider:
            raise ValueError("phase must satisfy 0 <= phase < divider")
        self._schedule.append((component, divider, phase))
        return component

    def add_all(self, components: Iterable[Component], divider: int = 1) -> None:
        """Register several components in the same domain."""
        for comp in components:
            self.add(comp, divider=divider)

    def probe(self, fn: Callable[[int], None]) -> None:
        """Register a per-tick observer called after commit with the tick
        number; used by testbenches to record signal traces."""
        self._probes.append(fn)

    # ------------------------------------------------------------------
    def step(self, ticks: int = 1) -> None:
        """Advance the simulation by ``ticks`` base clock ticks."""
        for _ in range(ticks):
            t = self.time
            due = [c for (c, d, p) in self._schedule if t % d == p]
            for comp in due:
                comp.clock()
            for comp in due:
                comp.commit()
            self.time = t + 1
            for probe in self._probes:
                probe(self.time)

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_ticks: int = 10_000_000,
        label: str = "condition",
    ) -> int:
        """Step until ``predicate()`` holds; return ticks consumed.

        Raises :class:`SimulationTimeout` after ``max_ticks`` ticks so a
        protocol deadlock in a model under test fails loudly instead of
        spinning forever.
        """
        start = self.time
        while not predicate():
            if self.time - start >= max_ticks:
                raise SimulationTimeout(
                    f"{label} not reached within {max_ticks} ticks"
                )
            self.step()
        return self.time - start

    def wait_high(self, signal: Signal, max_ticks: int = 10_000_000) -> int:
        """Step until ``signal`` is nonzero."""
        return self.run_until(
            lambda: signal.value != 0, max_ticks, label=f"{signal.name} high"
        )

    def wait_low(self, signal: Signal, max_ticks: int = 10_000_000) -> int:
        """Step until ``signal`` is zero."""
        return self.run_until(
            lambda: signal.value == 0, max_ticks, label=f"{signal.name} low"
        )

    def reset(self) -> None:
        """Reset time and every registered component (signals are reset by
        their owning components or testbench)."""
        self.time = 0
        for comp, _, _ in self._schedule:
            comp.reset()
