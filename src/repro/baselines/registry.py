"""Table I — review of existing FPGA GA implementations — as data + code.

``TABLE_I`` reproduces the feature matrix of the paper's Table I (plus the
proposed core's row); ``BASELINES`` maps the runnable rows to their engine
classes so the Table I benchmark can put live convergence numbers next to
the static features.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.compact_ga import CompactGA
from repro.baselines.scott_hga import ScottHGA
from repro.baselines.shackleford import ShacklefordGA
from repro.baselines.tang_yip import TangYipGA
from repro.baselines.tommiska import TommiskaGA
from repro.baselines.yoshida import YoshidaGA


@dataclass(frozen=True)
class TableIRow:
    """One row of the Table I feature matrix."""

    work: str
    elitist: str  # "Y"/"N"/"N/A"
    pop_size: str
    n_gens: str
    selection: str
    rates: str  # crossover/mutation rate programmability
    crossover_ops: str
    rng: str
    presets: str
    init_mode: str
    platform: str


TABLE_I: list[TableIRow] = [
    TableIRow(
        work="[5] Scott et al.",
        elitist="N",
        pop_size="Fixed (16)",
        n_gens="Fixed",
        selection="Roulette",
        rates="Fixed",
        crossover_ops="1-Point",
        rng="CA/fixed",
        presets="None",
        init_mode="None",
        platform="BORG board",
    ),
    TableIRow(
        work="[6] Tommiska & Vuori",
        elitist="N",
        pop_size="Fixed (32)",
        n_gens="Fixed",
        selection="Round robin",
        rates="Fixed",
        crossover_ops="1-Point",
        rng="LSHR/fixed",
        presets="None",
        init_mode="None",
        platform="Altera",
    ),
    TableIRow(
        work="[7] Shackleford et al.",
        elitist="N",
        pop_size="Fixed (64 or 128)",
        n_gens="Fixed",
        selection="Survival",
        rates="Fixed",
        crossover_ops="1-Point",
        rng="CA/fixed",
        presets="None",
        init_mode="None",
        platform="Aptix",
    ),
    TableIRow(
        work="[8] Yoshida et al.",
        elitist="N",
        pop_size="Fixed",
        n_gens="Fixed",
        selection="Simplified tourney",
        rates="—",
        crossover_ops="1-Point",
        rng="CA/fixed",
        presets="None",
        init_mode="None",
        platform="SFL (HDL)",
    ),
    TableIRow(
        work="[9] Tang & Yip",
        elitist="—",
        pop_size="Prog.",
        n_gens="Prog.",
        selection="Roulette",
        rates="Prog.",
        crossover_ops="1-Point, 4-Point, Uniform",
        rng="Fixed",
        presets="None",
        init_mode="—",
        platform="PCI card based system",
    ),
    TableIRow(
        work="[10] Aporntewan et al.",
        elitist="N/A",
        pop_size="Fixed (256)",
        n_gens="N/A",
        selection="N/A",
        rates="N/A",
        crossover_ops="N/A",
        rng="CA/fixed",
        presets="None",
        init_mode="None",
        platform="Xilinx Virtex1000",
    ),
    TableIRow(
        work="Proposed",
        elitist="Y",
        pop_size="Prog. (8-bit)",
        n_gens="Prog. (32-bit)",
        selection="Roulette",
        rates="Prog. (4-bit)",
        crossover_ops="1-point",
        rng="CA/prog.",
        presets="3 Diff. modes",
        init_mode="Separate init. mode (two-way handshake)",
        platform="Xilinx Virtex2Pro FPGA",
    ),
]

#: Runnable baseline engines by citation key.
BASELINES = {
    "scott": ScottHGA,
    "tommiska": TommiskaGA,
    "shackleford": ShacklefordGA,
    "yoshida": YoshidaGA,
    "tang_yip": TangYipGA,
    "compact": CompactGA,
}


def feature_table() -> list[dict[str, str]]:
    """Table I as row dictionaries (the benchmark prints these)."""
    return [vars(row) for row in TABLE_I]
