"""Signals: the wires connecting hardware components.

A :class:`Signal` models a named bundle of wires with a fixed bit width.  Its
value is always a masked non-negative integer.  Components never write a
signal directly during simulation; they queue a drive via
:meth:`repro.hdl.component.Component.drive`, and the simulator applies all
drives after every due component has observed the *old* values.  That gives
the standard two-phase synchronous semantics: everything a component reads in
``clock()`` is the state at the previous rising edge.

Testbenches may poke values directly with :meth:`Signal.poke`, which models
an external pin being driven between clock edges.
"""

from __future__ import annotations


class SignalConflictError(RuntimeError):
    """Raised when two components drive different values onto one signal in
    the same cycle (a bus contention bug in the model)."""


class Signal:
    """A fixed-width wire bundle.

    Parameters
    ----------
    name:
        Human-readable identifier used in traces and error messages.
    width:
        Number of wires; values are masked to ``width`` bits.
    init:
        Reset value (also the value after :meth:`reset`).
    """

    __slots__ = ("name", "width", "mask", "init", "_value", "_pending", "_driver")

    def __init__(self, name: str = "", width: int = 1, init: int = 0):
        if width < 1:
            raise ValueError(f"signal {name!r}: width must be >= 1, got {width}")
        self.name = name
        self.width = width
        self.mask = (1 << width) - 1
        self.init = init & self.mask
        self._value = self.init
        self._pending: int | None = None
        self._driver: str | None = None

    @property
    def value(self) -> int:
        """Current (pre-edge) value of the signal."""
        return self._value

    def poke(self, value: int) -> None:
        """Immediately set the value (testbench/external-pin use only)."""
        self._value = value & self.mask

    def queue(self, value: int, driver: str = "?") -> None:
        """Queue a drive to be applied at the end of the current cycle.

        Raises :class:`SignalConflictError` when a different value has
        already been queued this cycle by another driver.
        """
        value &= self.mask
        if self._pending is not None and self._pending != value:
            raise SignalConflictError(
                f"signal {self.name!r}: {driver} drives {value:#x} but "
                f"{self._driver} already drove {self._pending:#x} this cycle"
            )
        self._pending = value
        self._driver = driver

    def apply(self) -> None:
        """Commit the queued drive, if any (called by the simulator)."""
        if self._pending is not None:
            self._value = self._pending
            self._pending = None
            self._driver = None

    def reset(self) -> None:
        """Return to the reset value and drop any queued drive."""
        self._value = self.init
        self._pending = None
        self._driver = None

    def bit(self, index: int) -> int:
        """Value of a single bit (0 or 1)."""
        return (self._value >> index) & 1

    def bits(self, hi: int, lo: int) -> int:
        """Value of the inclusive bit slice ``[hi:lo]`` (VHDL downto order)."""
        if hi < lo:
            raise ValueError(f"bad slice [{hi}:{lo}]")
        return (self._value >> lo) & ((1 << (hi - lo + 1)) - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, width={self.width}, value={self._value:#x})"


def bus(name: str, width: int, init: int = 0) -> Signal:
    """Convenience constructor reading a little closer to netlist syntax."""
    return Signal(name=name, width=width, init=init)
