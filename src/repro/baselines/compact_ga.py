"""Aporntewan & Chongstitvatana's compact GA [10].

Table I row: no population at all — a probability vector (one probability
per bit, here in 1/256 fixed-point as hardware would hold it) generates two
competing individuals per step; the vector moves 1/N toward the winner's
bits.  "Compact GAs suffer from a severe limitation that their convergence
to the optimal solution is guaranteed only for ... tightly coded
nonoverlapping building blocks" — visible in the ablation bench on BF6.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, PopulationBaseline
from repro.fitness.base import FitnessFunction
from repro.rng.cellular_automaton import CellularAutomatonPRNG


class CompactGA(PopulationBaseline):
    """Compact GA over a 16-entry probability vector."""

    name = "Aporntewan et al. [10]"
    population_size = 256  # the simulated population size N (fixed, Table I)
    elitist = False
    FIXED_SEED = 0x1DB7
    WIDTH = 16

    def __init__(self, rng=None, simulated_population: int | None = None):
        super().__init__(rng or CellularAutomatonPRNG(self.FIXED_SEED))
        if simulated_population is not None:
            self.population_size = simulated_population

    def _sample(self, probs: list[int]) -> int:
        """Draw one individual: bit i is 1 with probability probs[i]/256."""
        word = 0
        for i in range(self.WIDTH):
            rand8 = self.rng.next_word() & 0xFF
            if rand8 < probs[i]:
                word |= 1 << i
        return word

    def run(self, fitness: FitnessFunction, evaluation_budget: int) -> BaselineResult:
        table = fitness.table()
        step = max(1, 256 // self.population_size)  # 1/N in 1/256 units
        probs = [128] * self.WIDTH  # 0.5 each
        evals = 0
        best_ind, best_fit = 0, -1
        series = []

        while evals < evaluation_budget - 1:
            a = self._sample(probs)
            b = self._sample(probs)
            fa, fb = int(table[a]), int(table[b])
            evals += 2
            winner, loser = (a, b) if fa >= fb else (b, a)
            wfit = max(fa, fb)
            for i in range(self.WIDTH):
                wbit = (winner >> i) & 1
                lbit = (loser >> i) & 1
                if wbit != lbit:
                    if wbit:
                        probs[i] = min(256, probs[i] + step)
                    else:
                        probs[i] = max(0, probs[i] - step)
            if wfit > best_fit:
                best_ind, best_fit = winner, wfit
            if evals % 64 == 0:
                series.append(best_fit)

        return BaselineResult(self.name, best_ind, best_fit, evals, series)

    def converged(self, probs: list[int]) -> bool:
        """Vector convergence test (all probabilities saturated)."""
        return all(p in (0, 256) for p in probs)
