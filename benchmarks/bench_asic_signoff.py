"""Ablation: ASIC sign-off substrate — scan-test coverage and power.

The paper's conclusion reports the fabricated digital ASIC passing DRC/ERC
and the design carrying scan-chain testability.  This bench quantifies the
reproduction's equivalents over the flattened GA datapath blocks:

* stuck-at fault coverage achieved by random-pattern scan vectors —
  generated on the packed fault-parallel engine (``repro.hdl.bitsim``),
  which is what turned this bench from ~40 s of serial fault simulation
  into ~1 s (see ``bench_fault_engine.py`` for the engine shoot-out);
* estimated dynamic + leakage power under random stimulus at 50 MHz.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analysis.power import estimate_power
from repro.hdl import rtlib
from repro.hdl.faults import generate_tests


BLOCKS = [
    ("adder16", lambda: rtlib.build_adder(16)),
    ("comparator16", lambda: rtlib.build_comparator(16)),
    ("crossover", lambda: rtlib.build_crossover_unit(16)),
    ("mutation", lambda: rtlib.build_mutation_unit(16)),
    ("ca_rng", lambda: rtlib.build_ca_rng(16)),
]


def _stimulus(nl, n=30, seed=3):
    rng = np.random.default_rng(seed)
    return [
        {name: int(rng.integers(0, 1 << len(nets))) for name, nets in nl.inputs.items()}
        for _ in range(n)
    ]


@pytest.mark.benchmark(group="asic-signoff")
def test_scan_coverage_and_power_per_block(benchmark):
    def signoff():
        rows = []
        for name, build in BLOCKS:
            nl = build()
            _vectors, report = generate_tests(
                nl, target_coverage=0.95, max_vectors=256, seed=9, engine="packed"
            )
            power = estimate_power(build(), _stimulus(build()))
            rows.append(
                {
                    "block": name,
                    "faults": report.total_faults,
                    "coverage%": round(100 * report.coverage, 1),
                    "scan_vectors": report.vectors_used,
                    "dyn_mW@50MHz": round(power.dynamic_mw, 3),
                    "leak_mW": round(power.leakage_mw, 4),
                }
            )
        return rows

    rows = benchmark.pedantic(signoff, rounds=1, iterations=1)
    print_table("ASIC sign-off: scan coverage + power per datapath block", rows)

    by = {r["block"]: r for r in rows}
    # arithmetic blocks are highly random-pattern testable
    assert by["adder16"]["coverage%"] >= 95
    assert by["mutation"]["coverage%"] >= 90
    # constant-rich decoders plateau lower (documented redundancy)
    assert by["crossover"]["coverage%"] >= 70
    # all power figures land in a plausible sub-mW band per block
    assert all(0 <= r["dyn_mW@50MHz"] < 5 for r in rows)
