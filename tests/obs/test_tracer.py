"""Tracer structure: span nesting, ordering, round-trip, thread safety.

The Hypothesis properties execute randomly generated nesting programs
(arbitrary trees of spans with events at any depth) against a live
:class:`Tracer` and check the emitted records reconstruct the exact tree:
every record's ``parent`` is the innermost enclosing span, ids are unique,
and timestamps are consistent (a child span opens after and closes before
its parent).
"""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    use_tracer,
)

# a nesting program: "event" leaves, or ("span", [children]) nodes
node = st.recursive(
    st.just("event"),
    lambda children: st.tuples(st.just("span"), st.lists(children, max_size=4)),
    max_leaves=20,
)
program = st.lists(node, min_size=1, max_size=6)


def execute(tracer, nodes, expected, parent_name=None, counter=None):
    """Run a program, recording (name, kind, expected-parent-name) rows."""
    counter = counter if counter is not None else [0]
    for n in nodes:
        name = f"n{counter[0]}"
        counter[0] += 1
        if n == "event":
            expected.append((name, "event", parent_name))
            tracer.event(name)
        else:
            expected.append((name, "span", parent_name))
            with tracer.span(name):
                execute(tracer, n[1], expected, name, counter)


@settings(max_examples=60, deadline=None)
@given(program)
def test_parent_links_reconstruct_the_nesting_tree(nodes):
    tracer = Tracer()
    expected = []
    execute(tracer, nodes, expected)
    records = tracer.records
    assert len(records) == len(expected)
    span_id = {r["name"]: r["id"] for r in records if r["type"] == "span"}
    by_name = {r["name"]: r for r in records}
    for name, kind, parent_name in expected:
        record = by_name[name]
        assert record["type"] == kind
        want = span_id[parent_name] if parent_name is not None else None
        assert record["parent"] == want, f"{name} parented wrongly"


@settings(max_examples=60, deadline=None)
@given(program)
def test_span_ids_unique_and_timestamps_nest(nodes):
    tracer = Tracer()
    execute(tracer, nodes, [])
    spans = [r for r in tracer.records if r["type"] == "span"]
    ids = [r["id"] for r in spans]
    assert len(ids) == len(set(ids))
    by_id = {r["id"]: r for r in spans}
    for r in spans:
        assert r["dur"] >= 0
        parent = r["parent"]
        if parent is not None:
            p = by_id[parent]
            assert p["t0"] <= r["t0"]
            assert r["t0"] + r["dur"] <= p["t0"] + p["dur"] + 1e-12
    events = [r for r in tracer.records if r["type"] == "event"]
    for ev in events:
        if ev["parent"] is not None:
            p = by_id[ev["parent"]]
            assert p["t0"] <= ev["ts"] <= p["t0"] + p["dur"] + 1e-12


@settings(max_examples=30, deadline=None)
@given(nodes=program)
def test_json_lines_round_trip(nodes, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "t.jsonl")
    tracer = Tracer(path)
    execute(tracer, nodes, [])
    tracer.close()
    assert read_trace(path) == tracer.records


def test_span_yields_its_id_and_events_parent_to_it():
    tracer = Tracer()
    with tracer.span("outer") as outer_id:
        tracer.event("inside")
        with tracer.span("inner") as inner_id:
            tracer.event("deep")
    records = {(r["type"], r["name"]): r for r in tracer.records}
    assert records[("event", "inside")]["parent"] == outer_id
    assert records[("event", "deep")]["parent"] == inner_id
    assert records[("span", "inner")]["parent"] == outer_id
    assert records[("span", "outer")]["parent"] is None


def test_attrs_ride_the_records_and_are_json_clean():
    tracer = Tracer()
    with tracer.span("run", engine="behavioral", pop=64):
        tracer.event("gen", generation=0, best_fitness=7016)
    for record in tracer.records:
        json.dumps(record)  # must be serializable
    span = next(r for r in tracer.records if r["type"] == "span")
    assert span["engine"] == "behavioral" and span["pop"] == 64


def test_span_record_emitted_on_exception_too():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert [r["name"] for r in tracer.records] == ["doomed"]


def test_thread_local_stacks_keep_nesting_straight():
    tracer = Tracer()
    errors = []

    def worker(tag):
        try:
            for i in range(50):
                with tracer.span(f"{tag}-outer-{i}"):
                    tracer.event(f"{tag}-ev-{i}")
                    with tracer.span(f"{tag}-inner-{i}"):
                        pass
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(f"t{k}",)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    by_name = {r["name"]: r for r in tracer.records}
    assert len(by_name) == len(tracer.records)  # no duplicated ids/names
    for k in range(4):
        for i in range(50):
            outer = by_name[f"t{k}-outer-{i}"]
            assert by_name[f"t{k}-ev-{i}"]["parent"] == outer["id"]
            assert by_name[f"t{k}-inner-{i}"]["parent"] == outer["id"]
            assert outer["parent"] is None  # other threads' spans invisible


def test_null_tracer_is_inert_and_default():
    assert get_tracer() is NULL_TRACER
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("nothing", attr=1):
        NULL_TRACER.event("nothing")
    NULL_TRACER.close()


def test_use_tracer_scopes_the_process_default():
    tracer = Tracer()
    with use_tracer(tracer) as active:
        assert active is tracer
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER
    set_tracer(tracer)
    try:
        assert get_tracer() is tracer
    finally:
        set_tracer(None)
    assert get_tracer() is NULL_TRACER


def test_tracer_requires_some_destination():
    with pytest.raises(ValueError):
        Tracer(sink=None, keep_records=False)
