"""A small declarative Moore FSM helper.

The paper's initialization module and application module are "simple finite
state machines" performing two-way handshakes (Sec. IV-B).  Those modules are
written against this helper; the GA core itself is a larger hand-written FSM
in :mod:`repro.core.ga_core` because its datapath actions do not fit a
table-driven style.

A state is a name plus an action callback; the action returns the next state
name (or ``None`` to stay).  Output drives requested inside the action are
queued through the owning component, keeping two-phase semantics.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.hdl.component import Component


class MooreFSM(Component):
    """Table-driven Moore machine.

    Parameters
    ----------
    name:
        Component name.
    states:
        Mapping from state name to action; each action is called with the
        FSM instance on the state's clock edges and returns the next state
        name or ``None`` to remain.
    initial:
        Reset state name.
    """

    def __init__(
        self,
        name: str,
        states: Mapping[str, Callable[["MooreFSM"], str | None]],
        initial: str,
    ):
        super().__init__(name)
        unknown = {s for s in states if not isinstance(s, str)}
        if unknown:
            raise ValueError(f"FSM {name!r}: non-string states {unknown}")
        if initial not in states:
            raise ValueError(f"FSM {name!r}: initial state {initial!r} not defined")
        self.states = dict(states)
        self.initial = initial
        self.state = initial

    def clock(self) -> None:
        action = self.states[self.state]
        nxt = action(self)
        if nxt is not None:
            if nxt not in self.states:
                raise ValueError(f"FSM {self.name!r}: transition to unknown state {nxt!r}")
            self.set_state(state=nxt)

    def reset(self) -> None:
        super().reset()
        self.state = self.initial
