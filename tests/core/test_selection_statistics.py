"""Statistical property: proportionate selection is actually proportionate.

Sec. III-B.2 claims the scheme "ensures that highly fit individuals have a
selection probability that is proportional to their fitness" — verified
here with a chi-square test over many draws of the real selection
arithmetic (threshold = (rn * sum) >> 16 against the cumulative scan).
"""

import numpy as np
from scipy import stats as sstats

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness import F3
from repro.rng.cellular_automaton import CellularAutomatonPRNG


def draw_selections(fits, n_draws, seed=45890):
    params = GAParameters(1, len(fits), 10, 1, seed)
    ga = BehavioralGA(params, F3(), rng=CellularAutomatonPRNG(seed))
    cum = np.cumsum(np.asarray(fits, dtype=np.int64))
    total = int(cum[-1])
    return [ga._select(cum, total) for _ in range(n_draws)]


class TestProportionality:
    def test_counts_proportional_to_fitness(self):
        fits = [100, 200, 300, 400]
        picks = draw_selections(fits, 8000)
        counts = np.bincount(picks, minlength=4)
        expected = np.asarray(fits, dtype=np.float64)
        expected = expected / expected.sum() * len(picks)
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        p = float(sstats.chi2.sf(chi2, 3))
        assert p > 1e-3, (counts.tolist(), expected.tolist())

    def test_zero_fitness_member_never_selected(self):
        fits = [0, 500, 500, 0]
        picks = draw_selections(fits, 3000)
        counts = np.bincount(picks, minlength=4)
        # index 0 can never exceed a threshold; index 3 only via the
        # last-member fallback when threshold lands at the very top —
        # possible but vanishingly rare here.
        assert counts[0] == 0
        assert counts[3] <= 3

    def test_dominant_member_dominates(self):
        fits = [10, 10, 10, 10000]
        picks = draw_selections(fits, 2000)
        share = np.bincount(picks, minlength=4)[3] / len(picks)
        assert share > 0.95

    def test_uniform_fitness_selects_uniformly(self):
        fits = [250] * 8
        picks = draw_selections(fits, 8000)
        counts = np.bincount(picks, minlength=8)
        expected = len(picks) / 8
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert float(sstats.chi2.sf(chi2, 7)) > 1e-3

    def test_selection_pressure_ordering(self):
        # monotone fitness must give monotone (within noise) pick counts
        fits = [100, 300, 600, 1000]
        counts = np.bincount(draw_selections(fits, 10000), minlength=4)
        assert counts[0] < counts[1] < counts[2] < counts[3]
