"""SEU campaign throughput and the protection stack's headline numbers.

Runs the MEDIUM-preset fault-injection campaign (unprotected vs fully
hardened, fault-free and 2e-4 upset rates, batched replicas) and prints the
campaign report table — the measured counterpart of the resilience section
in EXPERIMENTS.md.  Asserts the campaign is deterministic and that the
hardened config beats unprotected where it claims to.
"""

import pytest

from conftest import print_table
from repro.core.params import PRESET_MODES, PresetMode
from repro.fitness import MBF6_2
from repro.resilience import ResilienceCampaign, report_rows

N_REPLICAS = 6
RATE = 2e-4


def make_campaign():
    return ResilienceCampaign(
        params=PRESET_MODES[PresetMode.MEDIUM],
        fitness=MBF6_2(),
        rates=(0.0, RATE),
        configs=("unprotected", "hardened"),
        n_replicas=N_REPLICAS,
        seed=2026,
    )


@pytest.mark.benchmark(group="resilience-campaign")
def test_campaign_medium_preset(benchmark):
    MBF6_2().table()  # warm the fitness table cache
    report = benchmark.pedantic(
        lambda: make_campaign().run(), rounds=1, iterations=1
    )

    print_table(
        f"MEDIUM-preset SEU campaign ({N_REPLICAS} replicas, "
        f"baseline best {report['baseline_best']})",
        report_rows(report),
    )

    assert report == make_campaign().run()  # same seed, same report

    by = {(c["config"], c["rate"]): c for c in report["cells"]}
    assert by[("unprotected", 0.0)]["recovery_rate"] == 1.0
    assert by[("hardened", 0.0)]["recovery_rate"] == 1.0
    hardened = by[("hardened", RATE)]
    unprotected = by[("unprotected", RATE)]
    assert hardened["recovery_rate"] > unprotected["recovery_rate"]
    assert hardened["degradation_pct"] < unprotected["degradation_pct"]
    assert hardened["corrected"] > 0
