"""Slab spill store: checkpointed in-flight state for scheduler restart.

Between chunks, a job's whole evolution state is the carried
``(population, rng_state)`` pair plus splicing bookkeeping — exactly the
rollback checkpoint tuple of :mod:`repro.resilience.harden`, generalized
to one checkpoint per slab entry.  The scheduler serializes every
in-flight slab through :func:`repro.resilience.harden.encode_checkpoint`
into this store every N chunks, and discards the file when the slab
retires; after a crash, ``Scheduler.resume_spilled()`` (surfaced as
``repro serve --resume``) reloads each spilled slab and re-dispatches it
from its last checkpoint — results stay bit-identical to an uninterrupted
run because chunk boundaries are generation boundaries.

Files are JSON, one per slab, written atomically (temp file + rename) so
a crash mid-write can never leave a half checkpoint that resume would
trust.  Corrupt or unreadable files are skipped with a warning rather
than failing the restart.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

log = logging.getLogger("repro.service")

#: format version of one spill file (the per-entry state rides the
#: resilience checkpoint codec, which carries its own version field)
SPILL_VERSION = 1


class CheckpointStore:
    """A directory of resumable slab checkpoints."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: distinguishes files written by different scheduler lifetimes
        #: (slab ids restart from 0 in every process)
        self._pid = os.getpid()

    def _path(self, slab_id: int) -> Path:
        return self.root / f"slab-{self._pid}-{slab_id}.json"

    def save(self, slab_id: int, payload: dict) -> Path:
        """Atomically persist one slab's checkpoint payload."""
        payload = {"spill_version": SPILL_VERSION, **payload}
        path = self._path(slab_id)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        return path

    def discard(self, slab_id: int) -> None:
        """Drop a retired slab's checkpoint (missing file is fine)."""
        try:
            self._path(slab_id).unlink()
        except FileNotFoundError:
            pass

    def spilled(self) -> list[Path]:
        """Every spill file currently in the store (any process's)."""
        return sorted(self.root.glob("slab-*.json"))

    def claim_all(self) -> list[dict]:
        """Read and remove every spilled payload (crash-recovery sweep).

        The claim deletes the source file immediately: the resuming
        scheduler re-checkpoints at its own cadence under fresh file
        names, so a stale copy must not be replayed twice.  Unreadable
        or version-mismatched files are skipped with a warning.
        """
        payloads = []
        for path in self.spilled():
            try:
                with open(path) as handle:
                    payload = json.load(handle)
                if payload.get("spill_version") != SPILL_VERSION:
                    raise ValueError(
                        f"spill_version {payload.get('spill_version')!r}"
                    )
            except (OSError, ValueError) as exc:
                log.warning("skipping unreadable checkpoint %s: %s", path, exc)
                continue
            finally:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            payloads.append(payload)
        return payloads
