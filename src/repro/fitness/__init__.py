"""Fitness functions and fitness evaluation modules (FEMs).

The GA core is fitness-function agnostic: it requests evaluations over the
``candidate``/``fit_request``/``fit_value``/``fit_valid`` handshake (ports
8-11 of Table II) and can multiplex between up to eight FEMs via the 3-bit
``fitfunc_select`` port.  This package provides:

* the six test functions of the paper's evaluation (Sec. IV) as exact
  integer-valued :class:`~repro.fitness.base.FitnessFunction` objects
  (BF6, F2, F3 for the RT-level experiments; mBF6_2, mBF7_2, mShubert2D for
  the FPGA experiments);
* lookup-table FEMs backed by block-ROM models (the paper's FPGA approach);
* combinational shift-add FEMs, including gate-level netlists for the
  linear functions;
* the 8-way internal/external fitness multiplexer of the hybrid EHW system
  (Fig. 5).
"""

from repro.fitness.base import FitnessFunction, decode_two_vars, encode_two_vars
from repro.fitness.functions import (
    BF6,
    F2,
    F3,
    MBF6_2,
    MBF7_2,
    MShubert2D,
    REGISTRY,
    by_name,
    register,
)
from repro.fitness.sequential import (
    FEMMuxComposite,
    MOSeqBlend,
    SeqCounter4,
    SeqDetect101,
    SequentialFitness,
)
from repro.fitness.lookup import FitnessLookupROM, LookupFEM
from repro.fitness.combinational import (
    CombinationalFEM,
    build_f2_netlist,
    build_f3_netlist,
)
from repro.fitness.mux import ExternalFEMPort, FitnessMux

__all__ = [
    "FitnessFunction",
    "decode_two_vars",
    "encode_two_vars",
    "BF6",
    "F2",
    "F3",
    "MBF6_2",
    "MBF7_2",
    "MShubert2D",
    "REGISTRY",
    "by_name",
    "register",
    "SequentialFitness",
    "SeqCounter4",
    "SeqDetect101",
    "FEMMuxComposite",
    "MOSeqBlend",
    "FitnessLookupROM",
    "LookupFEM",
    "CombinationalFEM",
    "build_f2_netlist",
    "build_f3_netlist",
    "ExternalFEMPort",
    "FitnessMux",
]
