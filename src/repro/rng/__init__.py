"""Pseudo-random number generation substrate (Sec. II-C of the paper).

The GA IP core consumes 16-bit random words from a cellular-automaton PRNG
"similar to the implementation in [5]" (Scott et al.'s HGA).  This package
provides:

* :class:`~repro.rng.cellular_automaton.CellularAutomatonPRNG` — the
  production RNG: a 16-cell null-boundary hybrid rule-90/150 CA with a
  verified maximal-length rule vector, programmable seed, and the three
  preset seeds of the core;
* :class:`~repro.rng.lfsr.GaloisLFSR` — the linear-feedback alternative used
  by Tommiska & Vuori's implementation (Table I row [6]);
* :class:`~repro.rng.lcg.LCG16` / :class:`~repro.rng.lcg.PoorLCG` — a decent
  and a deliberately bad generator for the RNG-quality ablation study that
  Sec. II-C motivates (Meysenburg/Foster vs. Cantu-Paz);
* :mod:`~repro.rng.quality` — period, uniformity, serial-correlation, and
  bit-balance metrics used to characterise all of the above.
"""

from repro.rng.base import RandomSource
from repro.rng.cellular_automaton import (
    DEFAULT_RULE_VECTOR,
    PRESET_SEEDS,
    CellularAutomatonPRNG,
    ca_step,
)
from repro.rng.lfsr import GaloisLFSR
from repro.rng.lcg import LCG16, PoorLCG

__all__ = [
    "RandomSource",
    "CellularAutomatonPRNG",
    "ca_step",
    "DEFAULT_RULE_VECTOR",
    "PRESET_SEEDS",
    "GaloisLFSR",
    "LCG16",
    "PoorLCG",
]
