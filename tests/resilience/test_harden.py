"""Protection-stack tests: zero-fault identity, serial/batch parity under
faults, and the cycle-accurate hardening components."""

import numpy as np
import pytest

from repro.core.batch import BatchBehavioralGA
from repro.core.behavioral import BehavioralGA
from repro.core.ga_memory import pack_word
from repro.core.params import GAParameters
from repro.core.ports import GAPorts
from repro.core.system import GASystem
from repro.fitness import MBF6_2
from repro.hdl.simulator import SimulationTimeout
from repro.resilience.harden import (
    HARDENED,
    PROTECTION_PRESETS,
    UNPROTECTED,
    CycleResilienceOptions,
    FEMWatchdog,
    MemoryScrubber,
    ProtectionConfig,
    ResilienceHarness,
    SECDEDGAMemory,
)
from repro.resilience.secded import secded_encode, secded_extract
from repro.resilience.seu import (
    BoundaryUpsets,
    CycleSEUEvent,
    CycleSEUInjector,
    UpsetRates,
)

PARAMS = GAParameters(
    n_generations=24,
    population_size=32,
    crossover_threshold=10,
    mutation_threshold=1,
    rng_seed=0x2961,
)
ZERO = UpsetRates.uniform(0.0)
FAULTY = UpsetRates.uniform(3e-4)


def history_tuples(result):
    return [g.as_tuple() for g in result.history]


class TestZeroFaultIdentity:
    """A fully hardened run with zero upset rate is bit-identical to the
    bare engines — the protection stack is transparent when idle."""

    def test_serial_bit_identical(self):
        plain = BehavioralGA(PARAMS, MBF6_2()).run()
        harness = ResilienceHarness(HARDENED, ZERO, seed=1)
        hardened = BehavioralGA(PARAMS, MBF6_2(), resilience=harness).run()
        assert hardened.best_individual == plain.best_individual
        assert hardened.best_fitness == plain.best_fitness
        assert history_tuples(hardened) == history_tuples(plain)
        assert harness.outcomes([hardened])[0]["completed"]

    def test_batch_bit_identical(self):
        plain = BatchBehavioralGA([PARAMS] * 3, MBF6_2()).run()
        harness = ResilienceHarness(HARDENED, ZERO, seed=1, n_replicas=3)
        hardened = BatchBehavioralGA(
            [PARAMS] * 3, MBF6_2(), resilience=harness
        ).run()
        for p, h in zip(plain, hardened):
            assert h.best_fitness == p.best_fitness
            assert history_tuples(h) == history_tuples(p)


class TestSerialBatchParity:
    """A batch of N faulty replicas == N serial faulty runs, bit for bit,
    for any protection config — the campaign's validity condition."""

    @pytest.mark.parametrize("config", [UNPROTECTED, HARDENED],
                             ids=lambda c: c.name)
    def test_parity_under_faults(self, config):
        n = 3
        batch_harness = ResilienceHarness(config, FAULTY, seed=99, n_replicas=n)
        batch = BatchBehavioralGA(
            [PARAMS] * n, MBF6_2(), resilience=batch_harness
        ).run()
        batch_outcomes = batch_harness.outcomes(batch)

        for r in range(n):
            serial_harness = ResilienceHarness(
                config, FAULTY, seed=99, n_replicas=1, replica_offset=r
            )
            serial = BehavioralGA(
                PARAMS, MBF6_2(), resilience=serial_harness
            ).run()
            assert serial_harness.outcomes([serial])[0] == batch_outcomes[r], (
                f"replica {r} diverged under {config.name}"
            )


class TestEliteGuard:
    """Unit-level guard behaviour through the serial adapter (zero rates:
    the guard still runs on every boundary)."""

    class _FakeEngine:
        def __init__(self, table):
            self.table = table

            class _R:
                state = 5

            self.rng = _R()

    def make(self):
        table = np.array([100, 200, 300, 50], dtype=np.int64)
        cfg = ProtectionConfig(name="guard", elite_guard=True)
        return self._FakeEngine(table), ResilienceHarness(cfg, ZERO, seed=1)

    def test_repairs_corrupted_fitness(self):
        eng, harness = self.make()
        inds = np.array([0, 1, 2, 3])
        fits = eng.table[inds].copy()
        # champion is individual 2 (fit 300) but its register reads 999
        _, _, bi, bf = harness.serial_boundary(eng, 1, inds, fits, 2, 999)
        assert (bi, bf) == (2, 300)
        assert harness.elite_repairs[0] == 1

    def test_shadow_restores_lost_champion(self):
        eng, harness = self.make()
        inds = np.array([0, 1, 2, 3])
        fits = eng.table[inds].copy()
        harness.serial_boundary(eng, 1, inds, fits, 2, 300)  # shadow <- (2, 300)
        # best register flipped onto a genuinely worse individual
        _, _, bi, bf = harness.serial_boundary(eng, 2, inds, fits, 3, 50)
        assert (bi, bf) == (2, 300)
        assert harness.shadow_restores[0] == 1


class TestCheckpointRollback:
    def make(self, interval=4, max_rollbacks=2):
        cfg = ProtectionConfig(
            name="ck",
            secded=True,
            checkpoint_interval=interval,
            max_rollbacks=max_rollbacks,
        )
        return ResilienceHarness(cfg, ZERO, seed=1)

    def double_hit(self, slot=0):
        # two flips in the same word: detected-uncorrectable under SECDED
        return BoundaryUpsets(
            mem_slots=np.array([slot, slot], dtype=np.int64),
            mem_bits=np.array([3, 17], dtype=np.int64),
            rng_bits=np.empty(0, dtype=np.int64),
            best_bits=np.empty(0, dtype=np.int64),
            fem_faults=[],
            fem_stuck=False,
        )

    def test_rollback_restores_checkpoint(self):
        harness = self.make()
        inds = np.array([[1, 2, 3, 4]], dtype=np.int64)
        fits = np.array([[10, 20, 30, 40]], dtype=np.int64)
        bi = np.array([3], dtype=np.int64)
        bf = np.array([40], dtype=np.int64)
        rng_state = [123]
        harness._checkpoints[0] = (4, inds[0].copy(), fits[0].copy(), 3, 40, 123)

        inds[0, 0] = 99  # post-checkpoint progress that will be lost
        rolled = harness._secded_memory_upsets(
            0, 7, self.double_hit(), inds, fits, bi, bf,
            lambda r, s: rng_state.__setitem__(0, s),
        )
        assert rolled
        assert inds[0, 0] == 1 and rng_state[0] == 123
        assert harness.rollbacks[0] == 1
        assert harness.generations_lost[0] == 3  # gen 7 back to gen 4
        assert harness.detected_double[0] == 1
        assert harness._shadow_fit[0] == 40  # shadow rewound with the state

    def test_uncorrectable_accepted_when_rollbacks_exhausted(self):
        harness = self.make(max_rollbacks=0)
        inds = np.array([[1, 2]], dtype=np.int64)
        fits = np.array([[10, 20]], dtype=np.int64)
        harness._checkpoints[0] = (0, inds[0].copy(), fits[0].copy(), 0, 10, 1)
        rolled = harness._secded_memory_upsets(
            0, 3, self.double_hit(), inds, fits,
            np.array([0]), np.array([10]), lambda r, s: None,
        )
        assert not rolled
        assert harness.accepted_uncorrectable[0] == 1

    def test_single_bit_upsets_corrected_without_rollback(self):
        harness = self.make()
        inds = np.array([[1, 2]], dtype=np.int64)
        fits = np.array([[10, 20]], dtype=np.int64)
        u = BoundaryUpsets(
            mem_slots=np.array([0, 1], dtype=np.int64),
            mem_bits=np.array([5, 38], dtype=np.int64),
            rng_bits=np.empty(0, dtype=np.int64),
            best_bits=np.empty(0, dtype=np.int64),
            fem_faults=[],
            fem_stuck=False,
        )
        rolled = harness._secded_memory_upsets(
            0, 1, u, inds, fits, np.array([0]), np.array([10]), lambda r, s: None
        )
        assert not rolled
        assert harness.corrected[0] == 2
        assert inds[0].tolist() == [1, 2] and fits[0].tolist() == [10, 20]


class TestSECDEDGAMemory:
    def test_population_view_decodes(self):
        mem = SECDEDGAMemory(GAPorts.create())
        mem.data[128] = int(secded_encode(pack_word(7, 70)))
        mem.data[129] = int(secded_encode(pack_word(8, 80))) ^ (1 << 11)
        assert mem.width == 39
        # extract is unchecked; the flipped word may differ — scrub first
        fixed_pop = mem.population(bank=1, size=1)
        assert fixed_pop == [(7, 70)]

    def test_scrubber_walks_and_corrects(self):
        mem = SECDEDGAMemory(GAPorts.create())
        good = int(secded_encode(pack_word(5, 9)))
        mem.data[7] = good ^ (1 << 13)
        scrubber = MemoryScrubber(mem, interval=1)
        for _ in range(mem.depth):
            scrubber.clock()
        assert scrubber.words_scrubbed == mem.depth
        assert scrubber.corrected == 1
        assert mem.data[7] == good
        assert int(secded_extract(mem.data[7])) == pack_word(5, 9)

    def test_scrubber_flags_uncorrectable(self):
        mem = SECDEDGAMemory(GAPorts.create())
        corrupted = int(secded_encode(pack_word(1, 2))) ^ (1 << 3) ^ (1 << 20)
        mem.data[0] = corrupted
        scrubber = MemoryScrubber(mem, interval=1)
        scrubber.clock()
        assert scrubber.uncorrectable == 1
        assert mem.data[0] == corrupted  # left as found

    def test_scrub_interval_slows_walk(self):
        mem = SECDEDGAMemory(GAPorts.create())
        scrubber = MemoryScrubber(mem, interval=4)
        for _ in range(16):
            scrubber.clock()
        assert scrubber.words_scrubbed == 4


class TestFEMWatchdog:
    def make(self, timeout=4, max_retries=1):
        ports = GAPorts.create()
        wd = FEMWatchdog(
            ports.fit_request,
            ports.fit_valid,
            ports.fitfunc_select,
            fallback_order=[1, 2],
            timeout=timeout,
            max_retries=max_retries,
        )
        return ports, wd

    def test_response_clears_timer(self):
        ports, wd = self.make()
        ports.fit_request.poke(1)
        for _ in range(3):
            wd.clock()
        ports.fit_valid.poke(1)
        wd.clock()
        assert wd.waited == 0 and wd.timeouts == 0

    def test_timeout_retry_backoff_then_failover(self):
        ports, wd = self.make(timeout=4, max_retries=1)
        ports.fit_request.poke(1)
        for _ in range(4):  # first allowance: 4 cycles
            wd.clock()
        assert wd.timeouts == 1 and wd.retries == 1 and wd.failovers == 0
        for _ in range(8):  # backoff doubled: 8 cycles
            wd.clock()
        assert wd.timeouts == 2 and wd.failovers == 1
        assert ports.fitfunc_select.value == 1
        # a second full death walks to the next fallback slot
        for _ in range(4 + 8):
            wd.clock()
        assert wd.failovers == 2 and ports.fitfunc_select.value == 2

    def test_fallback_exhaustion_stops_failing_over(self):
        ports, wd = self.make(timeout=2, max_retries=0)
        ports.fit_request.poke(1)
        for _ in range(20):
            wd.clock()
        assert wd.failovers == 2  # both slots burned, then nothing


class TestCycleAccurateIntegration:
    PARAMS = GAParameters(
        n_generations=6,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=0x2961,
    )

    def clean_result(self):
        return GASystem(self.PARAMS, MBF6_2()).run()

    def test_secded_plus_scrubber_mask_single_bit_upsets(self):
        clean = self.clean_result()
        events = [
            CycleSEUEvent(tick=2_000 + 137 * i, domain="memory",
                          addr=i % 16, bit=(5 * i) % 39)
            for i in range(20)
        ]
        system = GASystem(
            self.PARAMS,
            MBF6_2(),
            resilience=CycleResilienceOptions(
                injector=CycleSEUInjector(events),
                secded=True,
                scrub_interval=1,
            ),
        )
        result = system.run()
        assert result.best_fitness == clean.best_fitness
        assert history_tuples(result) == history_tuples(clean)
        # the read path corrects a corrupted word on every read until the
        # scrubber's writeback (or a population write) retires it, so both
        # counters move; no upset ever escalates to a double error
        assert system.scrubber.corrected > 0
        assert system.memory.corrected > 0
        assert system.memory.double_errors == 0
        assert system.scrubber.uncorrectable == 0

    def test_dead_fem_without_watchdog_hangs(self):
        system = GASystem(
            self.PARAMS,
            MBF6_2(),
            resilience=CycleResilienceOptions(
                injector=CycleSEUInjector(
                    [CycleSEUEvent(tick=500, domain="fem_dead", addr=0)]
                ),
            ),
        )
        with pytest.raises(SimulationTimeout):
            system.run(max_ticks=30_000)

    def test_dead_fem_with_watchdog_fails_over(self):
        clean = self.clean_result()
        system = GASystem(
            self.PARAMS,
            {0: MBF6_2(), 1: MBF6_2()},
            resilience=CycleResilienceOptions(
                injector=CycleSEUInjector(
                    [CycleSEUEvent(tick=500, domain="fem_dead", addr=0)]
                ),
                watchdog=True,
                watchdog_timeout=32,
            ),
        )
        result = system.run()
        assert system.watchdog.failovers == 1
        assert system.ports.fitfunc_select.value == 1
        assert result.best_fitness == clean.best_fitness

    def test_fsm_lockup_freezes_core(self):
        # bit 5 always flips the state index past the 30 named states
        system = GASystem(
            self.PARAMS,
            MBF6_2(),
            resilience=CycleResilienceOptions(
                injector=CycleSEUInjector(
                    [CycleSEUEvent(tick=1_000, domain="fsm", bit=5)]
                ),
            ),
        )
        with pytest.raises(SimulationTimeout):
            system.run(max_ticks=30_000)
        assert system.core.state.startswith("LOCKUP_")

    def test_fem_corrupt_transient_changes_one_response(self):
        system = GASystem(
            self.PARAMS,
            MBF6_2(),
            resilience=CycleResilienceOptions(
                injector=CycleSEUInjector(
                    [CycleSEUEvent(tick=800, domain="fem_corrupt",
                                   addr=0, bit=15)]
                ),
            ),
        )
        system.run()  # completes: a transient never hangs the handshake
        assert len(system.resilience.injector.applied) == 1

    def test_scrubber_requires_secded(self):
        with pytest.raises(ValueError, match="secded"):
            GASystem(
                self.PARAMS,
                MBF6_2(),
                resilience=CycleResilienceOptions(scrub_interval=1),
            )


def test_presets_cover_the_stack():
    assert set(PROTECTION_PRESETS) == {
        "unprotected", "secded", "watchdog", "guard", "checkpoint", "hardened"
    }
    assert PROTECTION_PRESETS["hardened"].word_bits == 39
    assert PROTECTION_PRESETS["unprotected"].word_bits == 32
