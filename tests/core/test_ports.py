"""Tests for the Table II port interface."""

from repro.core.ports import GAPorts, PORT_SPEC


class TestPortSpec:
    def test_has_all_25_ports(self):
        assert len(PORT_SPEC) == 25

    def test_widths_match_table_ii(self):
        widths = {name: width for name, _d, width in PORT_SPEC}
        assert widths["index"] == 3
        assert widths["value"] == 16
        assert widths["fit_value"] == 16
        assert widths["candidate"] == 16
        assert widths["mem_address"] == 8
        assert widths["mem_data_out"] == 32
        assert widths["mem_data_in"] == 32
        assert widths["preset"] == 2
        assert widths["rn"] == 16
        assert widths["fitfunc_select"] == 3
        assert widths["fit_value_ext"] == 16

    def test_single_bit_control_signals(self):
        widths = {name: width for name, _d, width in PORT_SPEC}
        for name in (
            "reset", "sys_clock", "ga_load", "data_valid", "data_ack",
            "fit_request", "fit_valid", "mem_wr", "start_GA", "GA_done",
            "test", "scanin", "scanout", "fit_valid_ext",
        ):
            assert widths[name] == 1, name

    def test_directions(self):
        dirs = {name: d for name, d, _w in PORT_SPEC}
        assert dirs["candidate"] == "O"
        assert dirs["fit_request"] == "O"
        assert dirs["data_ack"] == "O"
        assert dirs["mem_wr"] == "O"
        assert dirs["fit_value"] == "I"
        assert dirs["rn"] == "I"
        assert dirs["start_GA"] == "I"


class TestGAPorts:
    def test_create_builds_every_port(self):
        ports = GAPorts.create()
        for name, _d, width in PORT_SPEC:
            assert ports.signal(name).width == width

    def test_prefix_in_names(self):
        ports = GAPorts.create("core0")
        assert ports.candidate.name == "core0.candidate"

    def test_rn_taken_strobe_exists(self):
        ports = GAPorts.create()
        assert ports.rn_taken.width == 1

    def test_all_signals_enumeration(self):
        ports = GAPorts.create()
        assert len(ports.all_signals()) == 26  # 25 Table II ports + rn_taken
