"""Command-line interface: regenerate any paper artefact from the shell.

Usage::

    python -m repro list                 # available experiments
    python -m repro table5               # Table V (cycle-accurate RT sims)
    python -m repro table7               # Table VII grid (behavioural)
    python -m repro fig13                # one hardware convergence figure
    python -m repro speedup              # Sec. IV-C comparison
    python -m repro run --fitness mBF6_2 --pop 64 --gens 64 --seed 0x061F
    python -m repro serve --port 7117   # GA-as-a-service TCP front end
    python -m repro submit --port 7117 --fitness mShubert2D --seed 0x2961

The heavy sweeps print progress to stderr; all artefact output goes to
stdout as aligned text tables or ASCII plots, the same renderings the
benchmark harnesses produce.
"""

from __future__ import annotations

import argparse
import sys


def _print_table(title: str, rows: list[dict], keys=None) -> None:
    if not rows:
        print(f"== {title} == (no rows)")
        return
    keys = keys or list(rows[0].keys())
    widths = {k: max(len(str(k)), *(len(str(r.get(k, ""))) for r in rows)) for k in keys}
    print(f"== {title} ==")
    print(" | ".join(str(k).ljust(widths[k]) for k in keys))
    for r in rows:
        print(" | ".join(str(r.get(k, "")).ljust(widths[k]) for k in keys))


def cmd_table1(_args) -> None:
    from repro.experiments.table1 import run_table1

    report = run_table1()
    keys = ["work", "elitist", "pop_size", "selection", "rng", "best_fitness@budget"]
    _print_table(f"Table I (budget {report['budget']} evals)", report["rows"], keys)


def cmd_table5(_args) -> None:
    from repro.experiments.table5 import run_table5

    report = run_table5(cycle_accurate=True)
    _print_table("Table V (cycle-accurate RT simulation)", report["rows"])


def cmd_table6(_args) -> None:
    from repro.experiments.table6 import run_table6

    report = run_table6()
    _print_table(f"Table VI ({report['device']})", report["rows"])
    _print_table("Per-block breakdown", report["block_breakdown"])


def _fpga_table(function_name: str) -> None:
    from repro.experiments.table789 import run_fpga_table

    report = run_fpga_table(function_name)
    _print_table(f"{report['id']} ({function_name}, optimum {report['optimum']})",
                 report["rows"])
    print(f"best overall: {report['best_overall']}, gap {report['gap_pct']}%")


def cmd_table7(_args) -> None:
    _fpga_table("mBF6_2")


def cmd_table8(_args) -> None:
    _fpga_table("mBF7_2")


def cmd_table9(_args) -> None:
    _fpga_table("mShubert2D")


def cmd_fig7(_args) -> None:
    from repro.analysis.plots import ascii_plot
    from repro.experiments.figures import run_fig7

    report = run_fig7()
    print(ascii_plot(report["x"], report["y"], label="Fig. 7: BF6(x) on [0,300]"))


def cmd_figs8_12(_args) -> None:
    from repro.analysis.plots import ascii_plot
    from repro.experiments.figures import run_rt_convergence_figures

    report = run_rt_convergence_figures()
    for fig_id, fig in report["figures"].items():
        xs = [g for g, _ in fig["scatter"]]
        ys = [f for _, f in fig["scatter"]]
        print(ascii_plot(xs, ys, label=f"{fig_id} ({fig['function']})"))


def cmd_figs13_16(_args) -> None:
    from repro.analysis.plots import ascii_plot
    from repro.experiments.figures import run_hw_convergence_figures

    print("running 4 cycle-accurate pop-64 runs; ~20 s", file=sys.stderr)
    report = run_hw_convergence_figures(cycle_accurate=True)
    for fig_id, fig in report["figures"].items():
        xs = fig["generations"] * 2
        ys = fig["best"] + [int(a) for a in fig["average"]]
        print(ascii_plot(xs, ys, label=(
            f"{fig_id} ({fig['function']}, seed {fig['seed']}): best "
            f"{fig['best_fitness']} at gen {fig['found_generation']}"
        )))


def cmd_speedup(_args) -> None:
    from repro.experiments.speedup import run_speedup

    print("running 6 modelled + 6 cycle-accurate runs; ~25 s", file=sys.stderr)
    report = run_speedup()
    _print_table("Sec. IV-C runtime comparison", report["rows"])


def _run_params(args):
    from repro import GAParameters

    return GAParameters(
        n_generations=args.gens,
        population_size=args.pop,
        crossover_threshold=args.xover,
        mutation_threshold=args.mut,
        rng_seed=int(args.seed, 0),
    )


def _run_cached(args) -> None:
    """``repro run --store-dir``: serve from / populate the run store."""
    from repro import fitness_by_name
    from repro.service.jobs import GARequest
    from repro.store import RunStore, run_cached

    request = GARequest(
        params=_run_params(args),
        fitness_name=args.fitness,
        engine_mode=args.engine_mode,
        n_islands=args.islands,
        migration_interval=args.migration_interval,
        topology=args.topology,
    )
    store = RunStore(args.store_dir)
    result, hit, key = run_cached(store, request, use_cache=not args.no_cache)
    fn = fitness_by_name(args.fitness)
    source = "cache hit" if hit else "computed cold"
    print(
        f"{fn.name}: best {result.best_fitness} at {result.best_individual}"
        f" (optimum {int(fn.table().max())}), {source}, key {key[:16]}..."
    )


def cmd_run(args) -> None:
    from repro import BehavioralGA, GASystem, fitness_by_name
    from repro.analysis.convergence import convergence_generation
    from repro.obs import Tracer

    if getattr(args, "store_dir", ""):
        if args.cycle_accurate:
            raise SystemExit(
                "--store-dir caches behavioural-engine jobs; it cannot be "
                "combined with --cycle-accurate"
            )
        if getattr(args, "trace_out", ""):
            raise SystemExit(
                "--store-dir replays stored results, which have no trace; "
                "drop --trace-out for cached runs"
            )
        _run_cached(args)
        return
    params = _run_params(args)
    fn = fitness_by_name(args.fitness)
    tracer = None
    if getattr(args, "trace_out", ""):
        tracer = Tracer(args.trace_out, keep_records=False)
    engine_mode = getattr(args, "engine_mode", "exact")
    if args.cycle_accurate and engine_mode != "exact":
        raise SystemExit(
            "--engine-mode turbo is a behavioural-engine fast path; "
            "it cannot be combined with --cycle-accurate"
        )
    islands = getattr(args, "islands", 1)
    if islands > 1 and args.cycle_accurate:
        raise SystemExit(
            "--islands runs the vectorized archipelago on the behavioural "
            "engines; it cannot be combined with --cycle-accurate"
        )
    try:
        if islands > 1:
            from repro.parallel import IslandGA

            result = IslandGA(
                params, fn,
                n_islands=islands,
                migration_interval=args.migration_interval,
                topology=args.topology,
                tracer=tracer,
                engine_mode=engine_mode,
            ).run()
            print(
                f"{fn.name}: best {result.best_fitness} at "
                f"{result.best_individual} (optimum {int(fn.table().max())}), "
                f"{islands} islands/{args.topology}, "
                f"{result.migrations} migrations, "
                f"{result.evaluations} evaluations"
            )
            return
        if args.cycle_accurate:
            result = GASystem(params, fn, tracer=tracer).run()
            extra = f", {result.cycles} GA cycles"
        else:
            result = BehavioralGA(
                params, fn, tracer=tracer, mode=engine_mode
            ).run()
            extra = ""
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace_out}", file=sys.stderr)
    print(
        f"{fn.name}: best {result.best_fitness} at {result.best_individual}"
        f" (optimum {int(fn.table().max())}), "
        f"converged gen {convergence_generation(result.history)}{extra}"
    )


def cmd_trace(args) -> None:
    """A fully traced run: JSON-lines trace out, summary to stderr."""
    from repro import BehavioralGA, GASystem, fitness_by_name
    from repro.obs import (
        SamplingProfiler,
        Tracer,
        best_series,
        cycle_best_series,
        cycle_phase_breakdown,
        phase_breakdown,
    )

    params = _run_params(args)
    fn = fitness_by_name(args.fitness)
    sink = sys.stdout if args.out == "-" else args.out
    profiler = SamplingProfiler() if args.profile else None
    with Tracer(sink) as tracer:
        if profiler is not None:
            profiler.start()
        try:
            if args.cycle_accurate:
                result = GASystem(params, fn, tracer=tracer).run()
            else:
                result = BehavioralGA(params, fn, tracer=tracer).run()
        finally:
            if profiler is not None:
                profiler.stop()
        records = tracer.records

    best = cycle_best_series(records) if args.cycle_accurate else best_series(records)
    print(
        f"{fn.name}: best {result.best_fitness} at {result.best_individual}; "
        f"{len(records)} trace records"
        + (f" -> {args.out}" if args.out != "-" else ""),
        file=sys.stderr,
    )
    print(f"best-fitness series: {best[0]} -> {best[-1]}", file=sys.stderr)
    if args.cycle_accurate:
        breakdown = cycle_phase_breakdown(records)
        total = sum(breakdown.values()) or 1
        unit = "cycles"
    else:
        breakdown = phase_breakdown(records)
        total = sum(breakdown.values()) or 1.0
        unit = "s"
    for phase, amount in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        print(
            f"  {phase:<10} {amount:>12.6f} {unit} ({amount / total:6.1%})"
            if unit == "s"
            else f"  {phase:<10} {amount:>12d} {unit} ({amount / total:6.1%})",
            file=sys.stderr,
        )
    if profiler is not None:
        print(f"profiler: {profiler.samples} samples", file=sys.stderr)
        for row in profiler.top(5):
            print(
                f"  {row['share']:6.1%} {row['function']} "
                f"({row['file']}:{row['line']})",
                file=sys.stderr,
            )


def cmd_stats(args) -> None:
    """Metrics snapshot: from a running server, or a local demo run."""
    import json

    from repro.obs import engine_rates, get_registry

    if args.port:
        from repro.service.server import call

        response = call(args.host, args.port, {"op": "metrics"})
        print(json.dumps(response.get("metrics", response), indent=2, sort_keys=True))
        return

    from repro import BehavioralGA, fitness_by_name

    print(
        f"no --port given: running a local {args.fitness} demo "
        f"(pop {args.pop}, {args.gens} gens)",
        file=sys.stderr,
    )
    BehavioralGA(_run_params(args), fitness_by_name(args.fitness)).run()
    snapshot = get_registry().snapshot()
    snapshot["engine_rates"] = engine_rates()
    print(json.dumps(snapshot, indent=2, sort_keys=True))


def cmd_campaign(args) -> None:
    import json

    from repro import GAParameters, fitness_by_name
    from repro.resilience import ResilienceCampaign, report_rows

    params = GAParameters(
        n_generations=args.gens,
        population_size=args.pop,
        crossover_threshold=args.xover,
        mutation_threshold=args.mut,
        rng_seed=int(args.seed, 0),
    )
    fn = fitness_by_name(args.fitness)
    rates = [float(r) for r in args.rates.split(",")]
    configs = [c.strip() for c in args.configs.split(",")]
    campaign = ResilienceCampaign(
        params=params,
        fitness=fn,
        rates=rates,
        configs=configs,
        n_replicas=args.replicas,
        seed=args.campaign_seed,
    )
    cells = len(rates) * len(configs)
    print(
        f"running {cells} campaign cell(s) x {args.replicas} replicas "
        f"({fn.name}, pop {args.pop}, {args.gens} gens)",
        file=sys.stderr,
    )
    report = campaign.run()
    _print_table(
        f"SEU campaign (baseline best {report['baseline_best']}, "
        f"seed {report['seed']})",
        report_rows(report),
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.json}", file=sys.stderr)


def cmd_serve(args) -> None:
    import threading

    from repro.service import BatchPolicy, GAService, serve

    policy = BatchPolicy(
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        admit_interval=args.admit_interval,
        max_pending=args.max_pending,
        chunk_timeout_s=args.chunk_timeout_s or None,
        checkpoint_every_chunks=args.checkpoint_every,
        shed_queue_depth=args.shed_queue_depth or None,
        max_backlog_s=args.max_backlog_s or None,
    )
    if args.resume and not (args.spill_dir or args.store_dir):
        raise SystemExit("--resume requires --spill-dir or --store-dir")
    service = GAService(
        workers=args.workers,
        mode=args.mode,
        policy=policy,
        spill_dir=args.spill_dir or None,
        resume=args.resume,
        store_dir=args.store_dir or None,
        cache=not args.no_cache,
    ).start()
    if service.resumed_handles:
        print(
            f"resumed {len(service.resumed_handles)} spilled job(s) "
            f"from {args.spill_dir or args.store_dir}",
            file=sys.stderr,
        )

        def report_resumed() -> None:
            for handle in service.resumed_handles:
                try:
                    result = handle.result()
                    print(
                        f"resumed job {result.job_id} completed: best "
                        f"{result.best_fitness} at {result.best_individual}",
                        file=sys.stderr,
                    )
                except Exception as exc:
                    print(f"resumed job failed: {exc}", file=sys.stderr)

        threading.Thread(target=report_resumed, daemon=True).start()

    def ready(host: str, port: int) -> None:
        print(f"serving on {host}:{port}", flush=True)
        print(
            f"workers={args.workers} mode={args.mode} "
            f"max_batch={policy.max_batch} admit_interval={policy.admit_interval}",
            file=sys.stderr,
        )

    try:
        serve(
            service,
            host=args.host,
            port=args.port,
            max_jobs=args.max_jobs or None,
            ready_callback=ready,
        )
    finally:
        service.shutdown()
        print(service.metrics.to_json(), file=sys.stderr)


def cmd_submit(args) -> None:
    import json

    from repro import GAParameters
    from repro.service import GARequest, RetryPolicy, submit_remote

    request = GARequest(
        params=GAParameters(
            n_generations=args.gens,
            population_size=args.pop,
            crossover_threshold=args.xover,
            mutation_threshold=args.mut,
            rng_seed=int(args.seed, 0),
        ),
        fitness_name=args.fitness,
        priority=args.priority,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
        protection=args.protection or None,
        upset_rate=args.upset_rate,
        engine_mode=getattr(args, "engine_mode", "exact"),
        n_islands=getattr(args, "islands", 1),
        migration_interval=getattr(args, "migration_interval", 8),
        topology=getattr(args, "topology", "ring"),
        retry=RetryPolicy(
            max_attempts=args.retries,
            backoff_s=args.retry_backoff_ms / 1e3,
            max_backoff_s=max(2.0, args.retry_backoff_ms / 1e3),
        ),
        deadline_mode=args.deadline_mode,
        use_cache=not args.no_cache,
    )
    result = submit_remote(args.host, args.port, request, timeout=args.timeout_s)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        island_note = (
            f", {result.island_stats['islands']} islands/"
            f"{result.island_stats['topology']}"
            if result.island_stats
            else ""
        )
        print(
            f"job {result.job_id}: {result.fitness_name} best "
            f"{result.best_fitness} at {result.best_individual} "
            f"({result.evaluations} evaluations, "
            f"{result.latency_s * 1e3:.1f} ms latency, "
            f"{result.n_chunks} chunk(s){island_note}"
            f"{', DEADLINE MISSED' if result.deadline_missed else ''}"
            f"{', from cache' if result.cache_hit else ''})"
        )


def cmd_replay(args) -> None:
    """Re-execute one stored run and assert bit-identity."""
    from repro.store import RunStore, replay

    store = RunStore(args.store_dir)
    try:
        report = replay(store, args.key)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]) if exc.args else str(exc))
    print(
        f"key {report.key[:16]}...: {report.verdict} "
        f"(stored best {report.stored_best}, replayed best "
        f"{report.replayed_best}, {report.compute_s * 1e3:.1f} ms recompute)"
    )
    if not report.identical:
        print(f"mismatched fields: {', '.join(report.mismatched_fields)}")
        raise SystemExit(1)


def cmd_store(args) -> None:
    """Run-store maintenance: ``repro store ls | verify | gc``."""
    from repro.store import RunStore

    store = RunStore(args.store_dir)
    if args.action == "ls":
        rows = []
        for entry in store.entries():
            prov = entry.provenance
            rows.append({
                "key": entry.key[:16],
                "fitness": entry.request.fitness_name,
                "mode": entry.request.engine_mode,
                "pop": entry.request.params.population_size,
                "gens": entry.request.params.n_generations,
                "seed": hex(entry.request.params.rng_seed),
                "best": entry.result.best_fitness,
                "source": prov.get("source", "?"),
            })
        _print_table(f"run store {store.root} ({len(rows)} entries)", rows)
        return
    if args.action == "verify":
        rows = store.verify()
        bad = [row for row in rows if not row["ok"]]
        for row in bad:
            print(f"BAD {row['key'][:16]}...: {row['reason']}")
        print(f"{len(rows) - len(bad)}/{len(rows)} entries ok")
        if bad:
            raise SystemExit(1)
        return
    if args.action == "gc":
        removed = store.gc(all_spills=args.all_spills)
        print(
            f"gc: removed {removed['tmp']} temp file(s), "
            f"{removed['corrupt']} corrupt entr(ies), "
            f"{removed['spills']} orphaned spill(s)"
        )
        return
    raise SystemExit(f"unknown store action {args.action!r}")


def cmd_experiment(args) -> None:
    """The experiment harness: ``repro experiment run | ls | report``."""
    from repro.experiments.harness import load_summary
    from repro.experiments.report import experiment_summary_md
    from repro.experiments.zoo import ZOO, experiment

    if args.action == "ls":
        rows = []
        for name in sorted(ZOO):
            exp = ZOO[name]
            rows.append(
                {
                    "experiment": name,
                    "scenarios": len(exp.scenarios),
                    "repeats": exp.nb_repeats,
                    "description": exp.description,
                }
            )
        _print_table("workload zoo", rows)
        return
    if args.action == "run":
        if not args.name:
            raise SystemExit("experiment run requires --name (see: experiment ls)")
        try:
            exp = experiment(args.name, nb_repeats=args.repeats or None)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        total = len(exp.scenarios) * exp.nb_repeats
        print(
            f"running experiment {exp.name!r}: {len(exp.scenarios)} "
            f"scenario(s) x {exp.nb_repeats} repeat(s) = {total} job(s)",
            file=sys.stderr,
        )
        result = exp.run(
            args.out_dir,
            workers=args.workers,
            mode=args.mode,
            store_dir=args.store_dir or None,
        )
        hits = sum(1 for row in result.rows if row["cache_hit"])
        print(result.out_dir / "summary.md")
        print(
            f"{total} job(s) in {result.wall_s:.2f}s "
            f"({hits} served from cache); results in {result.out_dir}",
            file=sys.stderr,
        )
        return
    if args.action == "report":
        if not args.name:
            raise SystemExit("experiment report requires --name")
        try:
            summary = load_summary(args.out_dir, args.name)
        except FileNotFoundError:
            raise SystemExit(
                f"no summary for experiment {args.name!r} under "
                f"{args.out_dir} — run it first"
            )
        print(experiment_summary_md(summary))
        return
    raise SystemExit(f"unknown experiment action {args.action!r}")


def cmd_list(_args) -> None:
    for name in sorted(COMMANDS):
        print(name)


COMMANDS = {
    "table1": cmd_table1,
    "table5": cmd_table5,
    "table6": cmd_table6,
    "table7": cmd_table7,
    "table8": cmd_table8,
    "table9": cmd_table9,
    "fig7": cmd_fig7,
    "figs8-12": cmd_figs8_12,
    "figs13-16": cmd_figs13_16,
    "speedup": cmd_speedup,
    "run": cmd_run,
    "trace": cmd_trace,
    "stats": cmd_stats,
    "campaign": cmd_campaign,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "replay": cmd_replay,
    "store": cmd_store,
    "experiment": cmd_experiment,
    "list": cmd_list,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's tables and figures."
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in COMMANDS:
        p = sub.add_parser(name)
        if name == "run":
            p.add_argument("--fitness", default="mBF6_2")
            p.add_argument("--pop", type=int, default=64)
            p.add_argument("--gens", type=int, default=64)
            p.add_argument("--xover", type=int, default=10)
            p.add_argument("--mut", type=int, default=1)
            p.add_argument("--seed", default="0x061F")
            p.add_argument("--cycle-accurate", action="store_true")
            p.add_argument("--islands", type=int, default=1,
                           help="archipelago size; >1 runs the vectorized "
                                "island model (one batched slab)")
            p.add_argument("--migration-interval", type=int, default=8)
            p.add_argument("--topology", default="ring",
                           help="ring | torus | random[:k]")
            p.add_argument("--engine-mode", choices=["exact", "turbo"],
                           default="exact",
                           help="behavioural engine mode: exact is "
                           "bit-identical to the RT core, turbo is the "
                           "vectorised fast path (same operator "
                           "distributions, different RNG word allocation)")
            p.add_argument("--trace-out", default="",
                           help="also write a JSON-lines trace to this path")
            p.add_argument("--store-dir", default="",
                           help="content-addressed run store: serve this "
                                "run from cache when stored, else compute "
                                "and write back")
            p.add_argument("--no-cache", action="store_true",
                           help="with --store-dir: skip the cache read, "
                                "recompute, still write back")
        elif name == "trace":
            p.add_argument("--fitness", default="mBF6_2")
            p.add_argument("--pop", type=int, default=64)
            p.add_argument("--gens", type=int, default=64)
            p.add_argument("--xover", type=int, default=10)
            p.add_argument("--mut", type=int, default=1)
            p.add_argument("--seed", default="0x061F")
            p.add_argument("--cycle-accurate", action="store_true")
            p.add_argument("--out", default="trace.jsonl",
                           help="JSON-lines trace destination ('-' for stdout)")
            p.add_argument("--profile", action="store_true",
                           help="also run the sampling wall-clock profiler")
        elif name == "stats":
            p.add_argument("--host", default="127.0.0.1")
            p.add_argument("--port", type=int, default=0,
                           help="fetch metrics from a running repro serve")
            p.add_argument("--fitness", default="mBF6_2")
            p.add_argument("--pop", type=int, default=64)
            p.add_argument("--gens", type=int, default=64)
            p.add_argument("--xover", type=int, default=10)
            p.add_argument("--mut", type=int, default=1)
            p.add_argument("--seed", default="0x061F")
        elif name == "campaign":
            p.add_argument("--fitness", default="mBF6_2")
            p.add_argument("--pop", type=int, default=32)
            p.add_argument("--gens", type=int, default=64)
            p.add_argument("--xover", type=int, default=10)
            p.add_argument("--mut", type=int, default=1)
            p.add_argument("--seed", default="0x2961")
            p.add_argument(
                "--rates",
                default="0,1e-4,5e-4",
                help="comma-separated per-bit per-generation upset rates",
            )
            p.add_argument(
                "--configs",
                default="unprotected,hardened",
                help="comma-separated protection presets "
                "(unprotected, secded, watchdog, guard, checkpoint, hardened)",
            )
            p.add_argument("--replicas", type=int, default=4)
            p.add_argument("--campaign-seed", type=int, default=2026)
            p.add_argument("--json", default="", help="also dump the report as JSON")
        elif name == "serve":
            p.add_argument("--host", default="127.0.0.1")
            p.add_argument("--port", type=int, default=0,
                           help="TCP port (0 picks an ephemeral one)")
            p.add_argument("--workers", type=int, default=2)
            p.add_argument("--mode", choices=["thread", "process"],
                           default="process")
            p.add_argument("--max-batch", type=int, default=32)
            p.add_argument("--max-wait-ms", type=float, default=20.0)
            p.add_argument("--admit-interval", type=int, default=16)
            p.add_argument("--max-pending", type=int, default=1024)
            p.add_argument("--max-jobs", type=int, default=0,
                           help="exit after serving N jobs (0 = forever)")
            p.add_argument("--chunk-timeout-s", type=float, default=0.0,
                           help="hung-chunk watchdog: retry chunks older "
                                "than this (0 = disabled)")
            p.add_argument("--checkpoint-every", type=int, default=1,
                           help="spill a resumable checkpoint every N "
                                "chunks (needs --spill-dir)")
            p.add_argument("--spill-dir", default="",
                           help="directory for resumable slab checkpoints "
                                "(arms crash recovery)")
            p.add_argument("--resume", action="store_true",
                           help="re-dispatch slabs spilled by a previous "
                                "(crashed) server from --spill-dir")
            p.add_argument("--shed-queue-depth", type=int, default=0,
                           help="start shedding lowest-priority jobs at "
                                "this queue depth (0 = disabled)")
            p.add_argument("--max-backlog-s", type=float, default=0.0,
                           help="shed when the estimated backlog exceeds "
                                "this many seconds (0 = disabled)")
            p.add_argument("--store-dir", default="",
                           help="content-addressed run store: cached "
                                "results, duplicate coalescing, and (unless "
                                "--spill-dir overrides) slab checkpoints")
            p.add_argument("--no-cache", action="store_true",
                           help="with --store-dir: disable cache reads and "
                                "coalescing, keep write-back (recorder mode)")
        elif name == "submit":
            p.add_argument("--host", default="127.0.0.1")
            p.add_argument("--port", type=int, default=7117)
            p.add_argument("--fitness", default="mBF6_2")
            p.add_argument("--pop", type=int, default=64)
            p.add_argument("--gens", type=int, default=64)
            p.add_argument("--xover", type=int, default=10)
            p.add_argument("--mut", type=int, default=1)
            p.add_argument("--seed", default="0x061F")
            p.add_argument("--priority", type=int, default=0)
            p.add_argument("--deadline-ms", type=float, default=0.0,
                           help="advisory deadline (0 = none)")
            p.add_argument("--deadline-mode", choices=["observe", "enforce"],
                           default="observe",
                           help="observe reports misses; enforce cancels "
                                "the job at the next chunk boundary")
            p.add_argument("--retries", type=int, default=3,
                           help="total attempts per chunk on worker "
                                "crashes/timeouts (1 = no retries)")
            p.add_argument("--retry-backoff-ms", type=float, default=50.0,
                           help="base retry backoff (exponential, "
                                "seed-jittered)")
            p.add_argument("--protection", default="",
                           help="resilience preset for hardened execution")
            p.add_argument("--upset-rate", type=float, default=0.0)
            p.add_argument("--engine-mode", choices=["exact", "turbo"],
                           default="exact",
                           help="request exact (bit-identical) or turbo "
                           "(vectorised) slab execution")
            p.add_argument("--islands", type=int, default=1,
                           help="archipelago size; >1 submits an island "
                                "job (one vectorized slab, routed solo)")
            p.add_argument("--migration-interval", type=int, default=8)
            p.add_argument("--topology", default="ring",
                           help="ring | torus | random[:k]")
            p.add_argument("--timeout-s", type=float, default=300.0)
            p.add_argument("--json", action="store_true",
                           help="print the full result as JSON")
            p.add_argument("--no-cache", action="store_true",
                           help="opt this job out of the server's cache "
                                "read path (it is still written back)")
        elif name == "replay":
            p.add_argument("key", help="store entry key (full sha256 hex)")
            p.add_argument("--store-dir", required=True,
                           help="run store root to replay from")
        elif name == "store":
            p.add_argument("action", choices=["ls", "verify", "gc"])
            p.add_argument("--store-dir", required=True,
                           help="run store root to operate on")
            p.add_argument("--all-spills", action="store_true",
                           help="gc: reclaim every spill checkpoint, not "
                                "just those of dead processes")
        elif name == "experiment":
            p.add_argument("action", choices=["run", "ls", "report"])
            p.add_argument("--name", default="",
                           help="zoo experiment name (see: experiment ls)")
            p.add_argument("--out-dir", default="experiments_out",
                           help="per-experiment output root "
                                "(<out-dir>/<name>/results.jsonl + summaries)")
            p.add_argument("--repeats", type=int, default=0,
                           help="override the experiment's nb_repeats "
                                "(0 = keep its default)")
            p.add_argument("--workers", type=int, default=2)
            p.add_argument("--mode", choices=["thread", "process"],
                           default="thread")
            p.add_argument("--store-dir", default="",
                           help="shared run store (default: a store inside "
                                "the experiment's output directory)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
