"""Linear congruential generators for the RNG-quality ablation.

Sec. II-C reviews the literature on RNG quality vs. GA performance
(Meysenburg & Foster found little effect; Cantu-Paz found the initial
population's randomness matters).  To reproduce that study shape we need a
*good* and a deliberately *poor* generator alongside the CA and LFSR:

* :class:`LCG16` — a 32-bit Numerical-Recipes LCG whose upper 16 bits are
  emitted: decent uniformity and period for GA purposes.
* :class:`PoorLCG` — a 16-bit modulus LCG with a small multiplier: short
  period, strong serial correlation, the classic "bad RNG".
"""

from __future__ import annotations

from repro.rng.base import RandomSource


class LCG16(RandomSource):
    """Good-quality LCG: 32-bit state, 16-bit output from the high half."""

    MULTIPLIER = 1664525
    INCREMENT = 1013904223
    MODULUS_BITS = 32

    def __init__(self, seed: int):
        super().__init__(seed)
        self._state32 = seed

    def _advance(self, state: int) -> int:
        self._state32 = (
            self.MULTIPLIER * self._state32 + self.INCREMENT
        ) & 0xFFFFFFFF
        return (self._state32 >> 16) & 0xFFFF

    def reseed(self, seed: int) -> None:
        super().reseed(seed)
        self._state32 = seed

    def state_key(self) -> int:
        return self._state32


class PoorLCG(RandomSource):
    """Deliberately poor LCG: tiny multiplier, 16-bit modulus.

    Exhibits a short effective period and lattice structure in its low bits;
    used to demonstrate the convergence degradation that motivates the
    programmable-seed/good-RNG design decisions of the paper.
    """

    MULTIPLIER = 75
    INCREMENT = 74

    def _advance(self, state: int) -> int:
        return (self.MULTIPLIER * state + self.INCREMENT) & 0xFFFF
