"""The fitness memo layer: shared instances, one LUT build per process."""

import threading

from repro.fitness import base as fitness_base
from repro.fitness.functions import REGISTRY, by_name, fresh_instance
from repro.parallel import islands


def test_by_name_returns_shared_instance():
    for name in REGISTRY:
        assert by_name(name) is by_name(name)


def test_fresh_instance_is_private():
    fn = fresh_instance("F2")
    assert fn is not by_name("F2")
    assert fn is not fresh_instance("F2")


def test_shared_table_builds_at_most_once():
    fn = by_name("F3")
    fn.table()
    before = dict(fitness_base.TABLE_BUILDS)
    # every later consumer re-uses the memoized instance's cached LUT
    for _ in range(5):
        assert by_name("F3").table() is fn.table()
    assert fitness_base.TABLE_BUILDS == before
    assert before.get("F3", 0) >= 1


def test_shared_instance_threadsafe_lookup():
    seen = []

    def grab():
        seen.append(by_name("mBF7_2"))

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(fn) for fn in seen}) == 1


def test_epoch_worker_reuses_shared_fitness():
    """Regression for the cache hoist: the per-worker ``_FN_CACHE`` that
    used to live in ``parallel.islands`` is gone — epoch workers now ride
    the registry's shared instances, building each LUT at most once."""
    assert not hasattr(islands, "_FN_CACHE")
    assert not hasattr(islands, "_worker_fitness")
    by_name("mBF6_2").table()  # pre-build, as any earlier consumer would
    before = dict(fitness_base.TABLE_BUILDS)
    params_dict = {
        "n_generations": 4, "population_size": 8,
        "crossover_threshold": 10, "mutation_threshold": 1,
        "rng_seed": 0x061F,
    }
    for island in range(3):
        islands._epoch_worker(
            ("mBF6_2", island, params_dict, 4, 0x061F, 0x061F, None, "exact")
        )
    assert fitness_base.TABLE_BUILDS == before  # zero rebuilds
