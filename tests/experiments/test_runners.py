"""Smoke + shape tests for the experiment runners (fast configurations)."""


from repro.experiments.figures import run_fig7, run_rt_convergence_figures
from repro.experiments.speedup import paper_speedup_params
from repro.experiments.table1 import run_table1
from repro.experiments.table5 import run_one
from repro.experiments.table6 import run_table6
from repro.experiments.table789 import run_fpga_table
from repro.experiments.config import TABLE5_RUNS


class TestTable1Runner:
    def test_rows_and_measurements(self):
        report = run_table1(evaluation_budget=256)
        assert report["id"] == "Table I"
        assert len(report["rows"]) == 7
        assert "Proposed" in report["measured"]
        # six runnable baselines + the proposed core
        assert len(report["measured"]) == 7

    def test_every_row_is_runnable(self):
        report = run_table1(evaluation_budget=256)
        for row in report["rows"]:
            assert isinstance(row["best_fitness@budget"], int), row["work"]

    def test_proposed_row_gets_value(self):
        report = run_table1(evaluation_budget=256)
        proposed = next(r for r in report["rows"] if r["work"] == "Proposed")
        assert isinstance(proposed["best_fitness@budget"], int)


class TestTable5Runner:
    def test_single_row_behavioural(self):
        result, row = run_one(TABLE5_RUNS[5], cycle_accurate=False)  # F2 run
        assert row["function"] == "F2"
        assert row["optimum"] == 3060
        assert 0 <= row["gap%"] <= 100
        assert row["conv_gen"] <= 32

    def test_single_row_cycle_accurate_matches_behavioural(self):
        hw_result, hw_row = run_one(TABLE5_RUNS[9], cycle_accurate=True)
        sw_result, sw_row = run_one(TABLE5_RUNS[9], cycle_accurate=False)
        assert hw_row["best"] == sw_row["best"]
        assert hw_row["conv_gen"] == sw_row["conv_gen"]


class TestTable6Runner:
    def test_report_structure(self):
        report = run_table6()
        assert report["id"] == "Table VI"
        assert report["device"] == "xc2vp30-7ff896"
        assert len(report["rows"]) == 4
        assert len(report["block_breakdown"]) == 6
        assert report["datapath_stats"]["dff"] > 0


class TestFpgaTableRunner:
    def test_mbf6_grid_shape(self):
        report = run_fpga_table("mBF6_2")
        assert report["id"] == "Table VII"
        assert len(report["rows"]) == 6
        for row in report["rows"]:
            assert {"pop32/XR10", "pop32/XR12", "pop64/XR10", "pop64/XR12"} <= set(row)
            assert "paper_pop32/XR10" in row

    def test_reaches_near_optimum(self):
        # Paper claim: best within 0.59% of the mBF6_2 optimum.
        report = run_fpga_table("mBF6_2")
        assert report["gap_pct"] <= 1.0

    def test_shubert_finds_multiple_optima(self):
        # Table IX: the core finds the global optimum for several settings.
        report = run_fpga_table("mShubert2D")
        assert len(report["optimum_hits"]) >= 1


class TestFigureRunners:
    def test_fig7_series(self):
        report = run_fig7()
        assert report["id"] == "Fig. 7"
        assert len(report["x"]) == 301
        assert report["n_local_maxima"] > 10

    def test_rt_figures_behavioural(self):
        report = run_rt_convergence_figures(cycle_accurate=False)
        assert set(report["figures"]) == {
            "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
        }
        for fig in report["figures"].values():
            assert fig["scatter"], "scatter data missing"
            gens = {g for g, _f in fig["scatter"]}
            assert gens == set(range(33))  # initial + 32 generations


class TestSpeedupConfig:
    def test_paper_configuration(self):
        p = paper_speedup_params()
        assert p.population_size == 32
        assert p.crossover_rate == 0.625
        assert p.mutation_rate == 0.0625
        assert p.n_generations == 32
