"""Protocol- and behaviour-level tests of the cycle-accurate GA core."""

import pytest

from repro.core import GAParameters, GASystem
from repro.core.ga_memory import BANK_SIZE
from repro.core.params import PRESET_MODES, PresetMode
from repro.fitness import F2, F3
from repro.fitness.mux import ExternalFEMPort
from repro.hdl.simulator import SimulationTimeout


def small_params(**overrides):
    base = dict(
        n_generations=4,
        population_size=8,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestBasicRun:
    def test_completes_and_asserts_done(self):
        system = GASystem(small_params(), F3())
        result = system.run()
        assert system.ports.GA_done.value == 1
        assert result.best_fitness > 0

    def test_candidate_bus_carries_best(self):
        system = GASystem(small_params(), F3())
        result = system.run()
        assert system.ports.candidate.value == result.best_individual

    def test_evaluation_count(self):
        # The initial population is fully evaluated; afterwards the elite is
        # copied with its stored fitness, so each generation costs pop - 1
        # FEM requests: evals = pop + G * (pop - 1).
        params = small_params(n_generations=4, population_size=8)
        result = GASystem(params, F3()).run()
        assert result.evaluations == 8 + 4 * 7

    def test_history_has_one_entry_per_generation(self):
        params = small_params(n_generations=6)
        result = GASystem(params, F3()).run()
        assert [g.generation for g in result.history] == list(range(7))

    def test_best_fitness_monotone_elitism(self):
        result = GASystem(small_params(n_generations=10), F2()).run()
        series = result.best_series()
        assert all(b >= a for a, b in zip(series, series[1:]))

    def test_population_members_recorded(self):
        params = small_params()
        result = GASystem(params, F3()).run()
        for gen in result.history:
            assert len(gen.fitnesses) == params.population_size

    def test_final_population_in_memory(self):
        params = small_params(n_generations=3)
        system = GASystem(params, F3())
        result = system.run()
        bank = system.core.cur_bank
        stored = system.memory.population(bank, params.population_size)
        assert [fit for _c, fit in stored] == result.history[-1].fitnesses

    def test_result_runtime_at_50mhz(self):
        result = GASystem(small_params(), F3()).run()
        assert result.runtime_seconds == pytest.approx(result.cycles / 50e6)


class TestPresetModes:
    def test_preset_small_runs_without_initialization(self):
        # Preset runs ignore the programmable registers entirely (the
        # fault-tolerance path of Sec. III-C.1a).
        system = GASystem(None, F3(), preset=PresetMode.SMALL)
        system.start()
        system.sim.run_until(
            lambda: system.ports.GA_done.value == 1, 40_000_000
        )
        cfg = system.core.cfg
        assert cfg == PRESET_MODES[PresetMode.SMALL]

    def test_user_mode_without_programming_raises(self):
        system = GASystem(small_params(), F3())
        # Bypass initialization: pulse start directly.
        with pytest.raises(RuntimeError):
            system.start()
            system.sim.step(4)

    def test_user_mode_requires_params(self):
        with pytest.raises(ValueError):
            GASystem(None, F3(), preset=PresetMode.USER)

    def test_population_above_bank_size_rejected(self):
        params = small_params(population_size=256, n_generations=1)
        system = GASystem(params, F3())
        with pytest.raises(ValueError):
            system.run()

    def test_bank_limit_is_128(self):
        from repro.core.ga_core import GACore

        assert GACore.MAX_POPULATION == BANK_SIZE == 128


class TestMultiFEM:
    def test_fitfunc_select_switches_functions(self):
        params = small_params(n_generations=3)
        fns = {0: F3(), 1: F2()}
        r0 = GASystem(params, fns, select=0).run()
        r1 = GASystem(params, fns, select=1).run()
        assert r0.fitness_name == "F3"
        assert r1.fitness_name == "F2"
        # F3's optimum region is different from F2's: same seed, different
        # evolution.
        assert r0.history[-1].fitness_sum != r1.history[-1].fitness_sum

    def test_eight_slots_supported(self):
        params = small_params(n_generations=1, population_size=4)
        fns = {i: F3() for i in range(8)}
        result = GASystem(params, fns, select=7).run()
        assert result.best_fitness > 0

    def test_unconnected_slot_times_out(self):
        params = small_params(n_generations=1, population_size=4)
        system = GASystem(params, {0: F3()}, select=3)
        with pytest.raises(SimulationTimeout):
            system.run(max_ticks=2000)

    def test_external_fem_served_by_testbench(self):
        # The hybrid EHW configuration of Fig. 5: slot 1 routed off-chip;
        # the testbench plays the external fitness module (here: F2).
        params = small_params(n_generations=2, population_size=4)
        ext = ExternalFEMPort.create()
        system = GASystem(params, {0: F3()}, select=1, external={1: ext})
        fn = F2()
        served = []

        def external_fem(_tick):
            if system.ports.fit_request.value:
                cand = system.ports.candidate.value
                ext.fit_value_ext.poke(fn(cand))
                ext.fit_valid_ext.poke(1)
                served.append(cand)
            else:
                ext.fit_valid_ext.poke(0)

        system.sim.probe(external_fem)
        result = system.run()
        assert result.evaluations == 4 + 2 * 3  # pop + G*(pop-1)
        assert served  # the external module really was consulted
        assert result.best_fitness == max(fn(c) for c in set(served))


class TestRestart:
    def test_second_start_reruns(self):
        system = GASystem(small_params(), F3())
        first = system.run()
        system.start()
        system.sim.run_until(lambda: system.ports.GA_done.value == 1, 10_000_000)
        assert len(system.core.history) == len(first.history)

    def test_second_run_cycle_count_is_fresh(self):
        # regression: _state_DONE latches done_cycle only while it is zero,
        # so _begin_run must clear it — otherwise a back-to-back run keeps
        # the first run's stale value and reports zero or negative cycles
        system = GASystem(small_params(), F3())
        first = system.run()
        system.start()
        system.sim.run_until(lambda: system.ports.GA_done.value == 1, 10_000_000)
        second_cycles = system.core.done_cycle - system.core.start_cycle
        assert second_cycles > 0
        assert second_cycles == first.cycles  # same work, same duration

    def test_reset_clears_core(self):
        system = GASystem(small_params(), F3())
        system.run()
        system.sim.reset()
        assert system.core.state == "IDLE"
        assert system.core.history == []


class TestDualClock:
    def test_dual_clock_produces_identical_result(self):
        params = small_params()
        fast = GASystem(params, F3()).run()
        dual = GASystem(params, F3(), dual_clock=True).run()
        assert dual.best_individual == fast.best_individual
        assert [g.as_tuple() for g in dual.history] == [
            g.as_tuple() for g in fast.history
        ]

    def test_dual_clock_reduces_handshake_wait(self):
        # With the FEM in the 4x faster domain (the paper's 200 MHz
        # init/application clock), each fitness handshake completes in
        # fewer GA-domain cycles, so the dual-clock run is slightly
        # *shorter* in GA cycles — never longer.
        params = small_params()
        fast = GASystem(params, F3()).run()
        dual = GASystem(params, F3(), dual_clock=True).run()
        assert dual.cycles <= fast.cycles
        assert dual.cycles == pytest.approx(fast.cycles, rel=0.15)
