"""Unit tests for the block-RAM/ROM models."""

import pytest

from repro.hdl.memory import BRAM_BITS, BlockROM, SinglePortRAM
from repro.hdl.signal import Signal
from repro.hdl.simulator import Simulator


def make_ram(depth=None, addr_w=8, data_w=32):
    addr = Signal("addr", addr_w)
    din = Signal("din", data_w)
    dout = Signal("dout", data_w)
    wr = Signal("wr", 1)
    ram = SinglePortRAM("ram", addr, din, dout, wr, depth=depth)
    sim = Simulator()
    sim.add(ram)
    return sim, ram, addr, din, dout, wr


class TestSinglePortRAM:
    def test_read_latency_one_cycle(self):
        sim, ram, addr, din, dout, wr = make_ram()
        ram.data[5] = 0xDEAD
        addr.poke(5)
        assert dout.value == 0
        sim.step()
        assert dout.value == 0xDEAD

    def test_write_then_read(self):
        sim, ram, addr, din, dout, wr = make_ram()
        addr.poke(9)
        din.poke(0x1234)
        wr.poke(1)
        sim.step()
        assert ram.data[9] == 0x1234
        wr.poke(0)
        sim.step()
        assert dout.value == 0x1234

    def test_write_first_dout(self):
        sim, ram, addr, din, dout, wr = make_ram()
        addr.poke(3)
        din.poke(0xBEEF)
        wr.poke(1)
        sim.step()
        assert dout.value == 0xBEEF

    def test_same_cycle_readers_see_old_contents(self):
        # Another component clocking in the same cycle as a write must see
        # the pre-write array (two-phase semantics).
        sim, ram, addr, din, dout, wr = make_ram()
        ram.data[0] = 111
        observed = []

        from repro.hdl.component import Component

        class Peeker(Component):
            def clock(self):
                observed.append(ram.data[0])

        sim.add(Peeker("peek"))
        addr.poke(0)
        din.poke(222)
        wr.poke(1)
        sim.step()
        assert observed == [111]
        assert ram.data[0] == 222

    def test_depth_exceeding_address_space_rejected(self):
        with pytest.raises(ValueError):
            make_ram(depth=512, addr_w=8)

    def test_address_wraps_to_depth(self):
        sim, ram, addr, din, dout, wr = make_ram(depth=16)
        ram.data[1] = 42
        addr.poke(17)  # 17 % 16 == 1
        sim.step()
        assert dout.value == 42

    def test_reset_clears_contents(self):
        sim, ram, addr, din, dout, wr = make_ram()
        ram.data[4] = 7
        sim.reset()
        assert ram.data[4] == 0

    def test_storage_accounting_matches_paper_ga_memory(self):
        # 256 x 32-bit GA memory = 8 Kb -> 1 of 136 BRAMs (~1%, Table VI).
        sim, ram, *_ = make_ram()
        assert ram.storage_bits() == 256 * 32
        assert ram.bram_count() == 1


class TestBlockROM:
    def test_sync_read(self):
        addr = Signal("addr", 4)
        dout = Signal("dout", 16)
        rom = BlockROM("rom", addr, dout, [i * 3 for i in range(16)])
        sim = Simulator()
        sim.add(rom)
        addr.poke(7)
        sim.step()
        assert dout.value == 21

    def test_contents_must_fit(self):
        with pytest.raises(ValueError):
            BlockROM("rom", Signal("a", 2), Signal("d", 8), [0] * 5)

    def test_fitness_lut_bram_count_matches_paper(self):
        # 65536 x 16-bit fitness lookup = 1 Mb -> 57 BRAMs of 136 (~42-48%,
        # Table VI reports 48% including FEM control overhead).
        addr = Signal("a", 16)
        dout = Signal("d", 16)
        rom = BlockROM("fitlut", addr, dout, [0] * 65536)
        assert rom.storage_bits() == 1 << 20
        assert rom.bram_count() == -(-(1 << 20) // BRAM_BITS)
