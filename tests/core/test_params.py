"""Tests for GAParameters, Table III index map, Table IV preset modes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import (
    GAParameters,
    ParameterIndex,
    PRESET_MODES,
    PresetMode,
    UnprogrammedParameterError,
)
from repro.rng.cellular_automaton import PRESET_SEEDS


def make(**overrides):
    base = dict(
        n_generations=32,
        population_size=32,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestValidation:
    def test_valid_roundtrip(self):
        p = make()
        assert p.population_size == 32

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_generations", 0),
            ("n_generations", 1 << 32),
            ("population_size", 1),
            ("population_size", 257),
            ("crossover_threshold", -1),
            ("crossover_threshold", 16),
            ("mutation_threshold", 16),
            ("rng_seed", 0),
            ("rng_seed", 1 << 16),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ValueError):
            make(**{field: value})

    def test_rates_in_sixteenths(self):
        # Sec. IV-C quotes crossover rate 0.625 (threshold 10) and mutation
        # rate 0.0625 (threshold 1).
        p = make(crossover_threshold=10, mutation_threshold=1)
        assert p.crossover_rate == 0.625
        assert p.mutation_rate == 0.0625

    def test_with_updates(self):
        p = make().with_(population_size=64)
        assert p.population_size == 64 and p.rng_seed == 45890


class TestTableIII:
    def test_index_values(self):
        assert ParameterIndex.NUM_GENERATIONS_LO == 0
        assert ParameterIndex.NUM_GENERATIONS_HI == 1
        assert ParameterIndex.POPULATION_SIZE == 2
        assert ParameterIndex.CROSSOVER_RATE == 3
        assert ParameterIndex.MUTATION_RATE == 4
        assert ParameterIndex.RNG_SEED == 5

    def test_generations_split_across_two_words(self):
        p = make(n_generations=0xABCD1234)
        words = dict(p.to_index_values())
        assert words[ParameterIndex.NUM_GENERATIONS_LO] == 0x1234
        assert words[ParameterIndex.NUM_GENERATIONS_HI] == 0xABCD

    @given(
        st.integers(1, (1 << 32) - 1),
        st.integers(2, 256),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(1, 0xFFFF),
    )
    def test_index_value_roundtrip(self, gens, pop, xt, mt, seed):
        p = GAParameters(gens, pop, xt, mt, seed)
        words = {int(i): v for i, v in p.to_index_values()}
        assert GAParameters.from_index_values(words) == p

    def test_from_index_values_needs_seed(self):
        with pytest.raises(ValueError):
            GAParameters.from_index_values({0: 32, 2: 32, 3: 10, 4: 1})

    def test_from_index_values_default_seed(self):
        p = GAParameters.from_index_values(
            {0: 32, 2: 32, 3: 10, 4: 1}, default_seed=77
        )
        assert p.rng_seed == 77

    def test_missing_parameters_named_in_error(self):
        # only the seed programmed: every other Table III word is missing
        with pytest.raises(UnprogrammedParameterError) as exc:
            GAParameters.from_index_values({int(ParameterIndex.RNG_SEED): 77})
        assert set(exc.value.missing) == {
            ParameterIndex.NUM_GENERATIONS_LO,
            ParameterIndex.POPULATION_SIZE,
            ParameterIndex.CROSSOVER_RATE,
            ParameterIndex.MUTATION_RATE,
        }
        assert "POPULATION_SIZE (index 2)" in str(exc.value)

    def test_missing_population_size_only(self):
        words = {0: 32, 3: 10, 4: 1, 5: 77}
        with pytest.raises(UnprogrammedParameterError) as exc:
            GAParameters.from_index_values(words)
        assert exc.value.missing == [ParameterIndex.POPULATION_SIZE]

    def test_generation_count_accepts_either_half(self):
        lo = GAParameters.from_index_values({0: 32, 2: 32, 3: 10, 4: 1, 5: 77})
        hi = GAParameters.from_index_values({1: 2, 2: 32, 3: 10, 4: 1, 5: 77})
        assert lo.n_generations == 32
        assert hi.n_generations == 2 << 16

    def test_unprogrammed_error_is_a_value_error(self):
        # callers catching the old ValueError keep working
        assert issubclass(UnprogrammedParameterError, ValueError)


class TestTableIV:
    def test_preset_values_match_table(self):
        small = PRESET_MODES[PresetMode.SMALL]
        assert (small.population_size, small.n_generations) == (32, 512)
        assert (small.crossover_threshold, small.mutation_threshold) == (12, 1)
        medium = PRESET_MODES[PresetMode.MEDIUM]
        assert (medium.population_size, medium.n_generations) == (64, 1024)
        assert (medium.crossover_threshold, medium.mutation_threshold) == (13, 2)
        large = PRESET_MODES[PresetMode.LARGE]
        assert (large.population_size, large.n_generations) == (128, 4096)
        assert (large.crossover_threshold, large.mutation_threshold) == (14, 3)

    def test_preset_selector_encoding(self):
        assert PresetMode.USER == 0b00
        assert PresetMode.SMALL == 0b01
        assert PresetMode.MEDIUM == 0b10
        assert PresetMode.LARGE == 0b11

    def test_presets_use_the_inbuilt_seeds(self):
        seeds = [PRESET_MODES[m].rng_seed for m in
                 (PresetMode.SMALL, PresetMode.MEDIUM, PresetMode.LARGE)]
        assert tuple(seeds) == PRESET_SEEDS

    def test_presets_fit_cycle_accurate_memory(self):
        from repro.core.ga_core import GACore

        for mode, params in PRESET_MODES.items():
            assert params.population_size <= GACore.MAX_POPULATION
