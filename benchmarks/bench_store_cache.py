"""Run-store caching — warm hits and in-flight coalescing vs cold compute.

Two claims of the content-addressed run store, measured and asserted:

* **Warm hit**: serving a stored result (one JSON read + re-addressing)
  is >= 20x faster than recomputing the run cold — the software analogue
  of the paper's lookup-table FEM beating re-evaluation (Sec. IV-C),
  lifted from fitness values to whole GA runs.
* **Coalescing**: a burst of identical submissions against a fresh store
  computes once; the duplicates ride the primary's in-flight computation,
  so the burst completes >= 5x faster than the same burst with caching
  disabled (every duplicate computed independently).

Both paths are asserted bit-identical to the cold result before any
timing is trusted.
"""

import time

import pytest

from conftest import print_table
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.service import BatchPolicy, GARequest, GAService
from repro.store import RunStore, job_key, results_identical
from repro.store.replay import execute_request

#: a meaty single job: the warm-hit ratio grows with job size, so this
#: stays deliberately moderate — the bound must hold even for small runs
WARM_REQUEST = GARequest(
    params=GAParameters(
        n_generations=512, population_size=64,
        crossover_threshold=10, mutation_threshold=1, rng_seed=0x061F,
    ),
    fitness_name="mBF6_2",
)

#: the duplicate burst for the coalescing claim; the uncached reference
#: still batches (max_batch=2), so the floor is the honest one — against
#: vectorized recomputation, not serial
N_DUPLICATES = 16
BURST_REQUEST = GARequest(
    params=GAParameters(
        n_generations=256, population_size=32,
        crossover_threshold=10, mutation_threshold=1, rng_seed=0x2961,
    ),
    fitness_name="mShubert2D",
)

MIN_WARM_SPEEDUP = 20.0
MIN_COALESCE_SPEEDUP = 5.0


def warm_hit_round(tmp_path):
    store = RunStore(tmp_path / "warm")
    t0 = time.perf_counter()
    cold = execute_request(WARM_REQUEST)
    t_cold = time.perf_counter() - t0
    key = store.put(WARM_REQUEST, cold)

    best = None
    for _ in range(5):
        t0 = time.perf_counter()
        warm = store.get_result(key)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    assert warm is not None and results_identical(warm, cold)
    return t_cold, best


def burst(store_dir, cache: bool):
    policy = BatchPolicy(max_batch=2, max_wait_s=0.005, admit_interval=32)
    with GAService(
        workers=1, mode="thread", policy=policy,
        store_dir=store_dir, cache=cache,
    ) as service:
        t0 = time.perf_counter()
        handles = [
            service.submit(BURST_REQUEST) for _ in range(N_DUPLICATES)
        ]
        results = [handle.result(300) for handle in handles]
        dt = time.perf_counter() - t0
        snap = service.snapshot()
    return results, dt, snap


@pytest.mark.benchmark(group="store")
def test_store_cache_speedups(benchmark, tmp_path):
    by_name(WARM_REQUEST.fitness_name).table()
    by_name(BURST_REQUEST.fitness_name).table()

    t_cold, t_warm = warm_hit_round(tmp_path)
    warm_speedup = t_cold / t_warm

    cold_ref = execute_request(BURST_REQUEST)
    # cache disabled: every duplicate computes independently
    uncached_results, t_uncached, _ = burst(tmp_path / "uncached", cache=False)
    # fresh store, cache on: one computes, the rest coalesce onto it
    coalesced_results, t_coalesced, snap = burst(
        tmp_path / "coalesced", cache=True
    )
    for result in uncached_results + coalesced_results:
        assert results_identical(result, cold_ref)
    assert snap["cache"]["coalesced"] == N_DUPLICATES - 1
    coalesce_speedup = t_uncached / t_coalesced

    benchmark.extra_info["warm_speedup"] = round(warm_speedup, 1)
    benchmark.extra_info["coalesce_speedup"] = round(coalesce_speedup, 1)
    benchmark.extra_info["cold_compute_s"] = round(t_cold, 4)
    benchmark.extra_info["warm_hit_s"] = round(t_warm, 6)
    benchmark.pedantic(
        lambda: RunStore(tmp_path / "warm").get_result(
            job_key(WARM_REQUEST)
        ),
        rounds=5,
        iterations=3,
    )

    rows = [
        {"path": "cold compute (pop 64 x 512 gens)",
         "time_s": round(t_cold, 4), "speedup": "1.0x"},
        {"path": "warm store hit",
         "time_s": round(t_warm, 6), "speedup": f"{warm_speedup:.0f}x"},
        {"path": f"{N_DUPLICATES} duplicates, cache off",
         "time_s": round(t_uncached, 3), "speedup": "1.0x"},
        {"path": f"{N_DUPLICATES} duplicates, coalesced",
         "time_s": round(t_coalesced, 3),
         "speedup": f"{coalesce_speedup:.1f}x"},
    ]
    print_table("content-addressed run store", rows)
    print(f"coalesced: {snap['cache']['coalesced']} of {N_DUPLICATES}, "
          f"writes: {snap['cache']['writes']}")

    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm hit only {warm_speedup:.1f}x over cold compute "
        f"(need >= {MIN_WARM_SPEEDUP}x)"
    )
    assert coalesce_speedup >= MIN_COALESCE_SPEEDUP, (
        f"coalesced burst only {coalesce_speedup:.1f}x over uncached "
        f"(need >= {MIN_COALESCE_SPEEDUP}x)"
    )
