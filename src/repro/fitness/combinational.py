"""Combinational fitness evaluation modules.

The paper notes that a lookup-based FEM "resulted in better operational
speed than a combinational implementation" (Sec. IV-B) — implying the
authors also built combinational FEMs.  The linear test functions F2/F3 are
realizable exactly with shifts and adds ("floating coefficients have been
changed so that they can be realized using shift and add"); this module
provides:

* :class:`CombinationalFEM` — a handshake FEM evaluating any Python-side
  fitness function with single-cycle (registered) latency;
* :func:`build_f2_netlist` / :func:`build_f3_netlist` — true gate-level
  shift-add datapaths for F2/F3, equivalence-checked against the integer
  semantics and usable for resource estimation.
"""

from __future__ import annotations

from repro.fitness.base import FitnessFunction
from repro.fitness.mux import FEMInterface
from repro.hdl.component import Component
from repro.hdl.netlist import Netlist
from repro.hdl.rtlib import const_word, not_word, ripple_adder


class CombinationalFEM(Component):
    """Handshake FEM computing the fitness in combinational logic.

    Responds one cycle after ``fit_request`` (the registered-output Moore
    convention), one cycle faster than :class:`~repro.fitness.lookup.LookupFEM`.
    """

    def __init__(self, name: str, iface: FEMInterface, fn: FitnessFunction):
        super().__init__(name)
        self.iface = iface
        self.fn = fn
        self.evaluations = 0
        self.responding = False

    def clock(self) -> None:
        io = self.iface
        if io.fit_request.value:
            if not self.responding:
                self.drive(io.fit_value, self.fn(io.candidate.value))
                self.drive(io.fit_valid, 1)
                self.set_state(responding=True, evaluations=self.evaluations + 1)
        elif self.responding:
            self.drive(io.fit_valid, 0)
            self.set_state(responding=False)

    def reset(self) -> None:
        super().reset()
        self.evaluations = 0
        self.responding = False
        self.iface.fit_valid.reset()
        self.iface.fit_value.reset()


def _shift_pad(nl: Netlist, nets: list[int], shift: int, width: int) -> list[int]:
    """Word of ``width`` bits equal to ``nets << shift`` (zero padded)."""
    zero = const_word(nl, 0, 1)[0]
    word = [zero] * shift + list(nets)
    word = word[:width]
    while len(word) < width:
        word.append(zero)
    return word


def build_f3_netlist() -> Netlist:
    """Gate-level F3 FEM: ``fitness = (x << 3) + (y << 2)``."""
    nl = Netlist("fem_f3")
    cand = nl.add_input("candidate", 16)
    x, y = cand[8:16], cand[0:8]
    x8 = _shift_pad(nl, x, 3, 16)
    y4 = _shift_pad(nl, y, 2, 16)
    total, _ = ripple_adder(nl, x8, y4)
    nl.add_output("fitness", total)
    return nl


def build_f2_netlist() -> Netlist:
    """Gate-level F2 FEM: ``fitness = (x << 3) - (y << 2) + 1020``.

    Subtraction is two's complement: ``a - b = a + ~b + 1`` with the +1
    folded into the carry-in; the result always lies in [0, 3060] so the
    16-bit wrap never engages.
    """
    nl = Netlist("fem_f2")
    cand = nl.add_input("candidate", 16)
    x, y = cand[8:16], cand[0:8]
    x8 = _shift_pad(nl, x, 3, 16)
    y4 = _shift_pad(nl, y, 2, 16)
    bias = const_word(nl, 1020, 16)
    partial, _ = ripple_adder(nl, x8, bias)
    one = const_word(nl, 1, 1)[0]
    total, _ = ripple_adder(nl, partial, not_word(nl, y4), cin=one)
    nl.add_output("fitness", total)
    return nl
