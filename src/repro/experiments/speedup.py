"""Sec. IV-C — hardware vs. software runtime comparison.

The paper's configuration: population 32, crossover rate 0.625 (threshold
10), mutation rate 0.0625 (threshold 1), 32 generations, mBF6_2, lookup FEM.
"""

from __future__ import annotations

from repro.analysis.timing import (
    PAPER_SOFTWARE_RUNTIME_S,
    PAPER_SPEEDUP,
    PowerPCCostModel,
    speedup_experiment,
)
from repro.core.params import GAParameters
from repro.fitness.functions import MBF6_2


def paper_speedup_params(seed: int = 45890) -> GAParameters:
    """The Sec. IV-C configuration (seed unspecified in the paper)."""
    return GAParameters(
        n_generations=32,
        population_size=32,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=seed,
    )


def run_speedup(seed: int = 45890, n_runs: int = 6) -> dict:
    """The paper averaged over six runs; sweep seeds accordingly."""
    reports = []
    base = paper_speedup_params(seed)
    for k in range(n_runs):
        run_seed = ((seed + 7919 * k) & 0xFFFF) or 1
        reports.append(
            speedup_experiment(base.with_(rng_seed=run_seed), MBF6_2())
        )
    mean_sw = sum(r.software_seconds for r in reports) / n_runs
    mean_hw = sum(r.hardware_seconds for r in reports) / n_runs
    mean_cycles = sum(r.hardware_cycles for r in reports) / n_runs
    return {
        "id": "Sec. IV-C speedup",
        "paper_software_ms": PAPER_SOFTWARE_RUNTIME_S * 1e3,
        "paper_speedup": PAPER_SPEEDUP,
        "software_ms": mean_sw * 1e3,
        "hardware_ms": mean_hw * 1e3,
        "hardware_cycles": mean_cycles,
        "speedup_measured": mean_sw / mean_hw,
        "speedup_paper_equivalent": sum(
            r.speedup_paper_equivalent for r in reports
        )
        / n_runs,
        "cost_model": vars(PowerPCCostModel()),
        "rows": reports[0].rows(),
    }
