"""Tests for the island-model parallel GA."""

import pytest

from repro.core.params import GAParameters
from repro.fitness import BF6, F3
from repro.parallel import IslandGA


def params(**overrides):
    base = dict(
        n_generations=16,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestConstruction:
    def test_needs_two_islands(self):
        with pytest.raises(ValueError):
            IslandGA(params(), F3(), n_islands=1)

    def test_migration_interval_positive(self):
        with pytest.raises(ValueError):
            IslandGA(params(), F3(), migration_interval=0)

    def test_island_seeds_distinct_and_nonzero(self):
        ga = IslandGA(params(), F3(), n_islands=8)
        assert len(set(ga.seeds)) == 8
        assert all(s != 0 for s in ga.seeds)


class TestSequentialRun:
    def test_runs_all_epochs(self):
        ga = IslandGA(params(), F3(), n_islands=3, migration_interval=4)
        result = ga.run()
        assert len(result.best_per_epoch) == 4  # 16 gens / 4 per epoch
        assert result.migrations == 3 * 4

    def test_best_is_max_over_islands(self):
        ga = IslandGA(params(), BF6(), n_islands=4, migration_interval=8)
        result = ga.run()
        assert result.best_fitness == max(result.island_bests)

    def test_epoch_bests_monotone(self):
        ga = IslandGA(params(n_generations=32), BF6(), n_islands=3)
        result = ga.run()
        series = result.best_per_epoch
        assert all(b >= a for a, b in zip(series, series[1:]))

    def test_deterministic(self):
        a = IslandGA(params(), BF6(), n_islands=3).run()
        b = IslandGA(params(), BF6(), n_islands=3).run()
        assert a.best_individual == b.best_individual
        assert a.best_per_epoch == b.best_per_epoch

    def test_beats_or_matches_single_island_budget(self):
        # With 4x the evaluations, the island model should do at least as
        # well as one engine (sanity of the parallel extension).
        from repro.core.behavioral import BehavioralGA

        single = BehavioralGA(params(n_generations=32), BF6()).run()
        islands = IslandGA(
            params(n_generations=32), BF6(), n_islands=4, migration_interval=8
        ).run()
        assert islands.best_fitness >= single.best_fitness * 0.98

    def test_evaluations_accumulate_across_islands(self):
        p = params(n_generations=8, population_size=8)
        ga = IslandGA(p, F3(), n_islands=2, migration_interval=4)
        result = ga.run()
        # per island per epoch: pop + gens*(pop-1) = 8 + 4*7 = 36
        assert result.evaluations == 36 * 2 * 2


class TestParallelMode:
    def test_pool_matches_sequential(self):
        p = params(n_generations=8, population_size=8)
        seq = IslandGA(p, F3(), n_islands=2, migration_interval=4, processes=1).run()
        par = IslandGA(p, F3(), n_islands=2, migration_interval=4, processes=2).run()
        assert par.best_individual == seq.best_individual
        assert par.best_per_epoch == seq.best_per_epoch
        assert par.evaluations == seq.evaluations
