"""Baseline GA engines: the prior FPGA implementations of Table I plus the
software GA of the paper's speedup experiment (Sec. IV-C).

Each baseline reproduces the *architectural* GA of the cited work —
selection scheme, replacement policy, parameter rigidity, RNG style — so the
Table I comparison can be regenerated as a live benchmark rather than a
static citation table:

* :class:`~repro.baselines.scott_hga.ScottHGA` [5] — roulette selection,
  1-point crossover, fixed population of 16, CA RNG with fixed seed;
* :class:`~repro.baselines.tommiska.TommiskaGA` [6] — round-robin parent
  selection, fixed population of 32, LFSR RNG;
* :class:`~repro.baselines.shackleford.ShacklefordGA` [7] — survival-based
  steady-state engine;
* :class:`~repro.baselines.yoshida.YoshidaGA` [8] — steady-state GA
  processor with simplified tournament selection;
* :class:`~repro.baselines.compact_ga.CompactGA` [10] — the compact GA over
  a probability vector (no stored population);
* :class:`~repro.baselines.software_ga.SoftwareGA` — the C-program analogue
  used for the 5.16x hardware speedup comparison, instrumented with the
  operation counters the timing model prices.
"""

from repro.baselines.base import BaselineResult, PopulationBaseline
from repro.baselines.scott_hga import ScottHGA
from repro.baselines.tommiska import TommiskaGA
from repro.baselines.shackleford import ShacklefordGA
from repro.baselines.yoshida import YoshidaGA
from repro.baselines.compact_ga import CompactGA
from repro.baselines.tang_yip import CROSSOVER_OPERATORS, TangYipGA
from repro.baselines.software_ga import SoftwareGA
from repro.baselines.registry import BASELINES, TABLE_I, feature_table

__all__ = [
    "BaselineResult",
    "PopulationBaseline",
    "ScottHGA",
    "TommiskaGA",
    "ShacklefordGA",
    "YoshidaGA",
    "CompactGA",
    "TangYipGA",
    "CROSSOVER_OPERATORS",
    "SoftwareGA",
    "BASELINES",
    "TABLE_I",
    "feature_table",
]
