"""Ablation: cycle-accurate model vs. vectorised behavioural twin.

The two implementations are bit-identical (equivalence test suite); this
bench quantifies what the fidelity costs: wall-clock per run and the
simulated cycles-per-evaluation figure of the FSM.
"""

import pytest

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.core.system import GASystem
from repro.fitness import MBF6_2

PARAMS = GAParameters(
    n_generations=16,
    population_size=32,
    crossover_threshold=10,
    mutation_threshold=1,
    rng_seed=45890,
)


@pytest.mark.benchmark(group="model-throughput")
def test_cycle_accurate_run(benchmark):
    fn = MBF6_2()
    fn.table()

    def run():
        return GASystem(PARAMS, fn).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\ncycle-accurate: {result.cycles} GA cycles, "
        f"{result.cycles / result.evaluations:.1f} cycles/eval, "
        f"hardware time {1e3 * result.runtime_seconds:.3f} ms @50MHz"
    )
    assert result.cycles > 0


@pytest.mark.benchmark(group="model-throughput")
def test_behavioral_run(benchmark):
    fn = MBF6_2()
    fn.table()
    result = benchmark(lambda: BehavioralGA(PARAMS, fn).run())
    assert result.best_fitness > 0


@pytest.mark.benchmark(group="model-throughput")
def test_models_agree(benchmark):
    fn = MBF6_2()

    def both():
        hw = GASystem(PARAMS, fn).run()
        sw = BehavioralGA(PARAMS, fn).run()
        assert hw.best_individual == sw.best_individual
        assert [g.as_tuple() for g in hw.history] == [
            g.as_tuple() for g in sw.history
        ]
        return hw

    benchmark.pedantic(both, rounds=1, iterations=1)
