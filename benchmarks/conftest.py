"""Shared helpers for the benchmark harnesses.

Each ``bench_*.py`` regenerates one table or figure of the paper.  The
pytest-benchmark plugin times the regeneration; the printed report is the
reproduced artefact itself (rows or an ASCII plot) with the paper's values
alongside, mirroring EXPERIMENTS.md.
"""

from __future__ import annotations


def print_table(title: str, rows: list[dict], keys: list[str] | None = None) -> None:
    """Render rows as an aligned text table to the captured stdout."""
    if not rows:
        print(f"\n== {title} == (no rows)")
        return
    keys = keys or list(rows[0].keys())
    widths = {
        k: max(len(str(k)), *(len(str(r.get(k, ""))) for r in rows)) for k in keys
    }
    print(f"\n== {title} ==")
    print(" | ".join(str(k).ljust(widths[k]) for k in keys))
    print("-+-".join("-" * widths[k] for k in keys))
    for r in rows:
        print(" | ".join(str(r.get(k, "")).ljust(widths[k]) for k in keys))
