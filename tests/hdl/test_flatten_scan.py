"""Tests for netlist flattening and scan-chain insertion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import rtlib
from repro.hdl.flatten import flatten_ga_datapath, merge
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.scan import Stepper, insert_scan_chain, scan_dump, scan_load


class TestMerge:
    def test_merge_preserves_function(self):
        top = Netlist("top")
        a = top.add_input("x", 16)
        b = top.add_input("y", 16)
        outs = merge(top, rtlib.build_adder(16), "add0", {"a": a, "b": b})
        assert top.evaluate({"x": 5, "y": 7})["add0.sum"] == 12
        assert len(outs["sum"]) == 16

    def test_unconnected_inputs_become_ports(self):
        top = Netlist("top")
        merge(top, rtlib.build_adder(16), "add0")
        assert "add0.a" in top.inputs and "add0.b" in top.inputs
        assert top.evaluate({"add0.a": 2, "add0.b": 3})["add0.sum"] == 5

    def test_width_mismatch_rejected(self):
        top = Netlist("top")
        nets = top.add_input("x", 8)
        with pytest.raises(NetlistError):
            merge(top, rtlib.build_adder(16), "a", {"a": nets})

    def test_two_blocks_chained(self):
        top = Netlist("top")
        a = top.add_input("a", 16)
        b = top.add_input("b", 16)
        c = top.add_input("c", 16)
        first = merge(top, rtlib.build_adder(16), "s0", {"a": a, "b": b})
        merge(top, rtlib.build_adder(16), "s1", {"a": first["sum"], "b": c})
        out = top.evaluate({"a": 10, "b": 20, "c": 30})
        assert out["s1.sum"] == 60

    def test_merged_flops_keep_state(self):
        top = Netlist("top")
        merge(top, rtlib.build_counter(4), "cnt")
        stepper = Stepper(top)
        stepper.step(**{"cnt.en": 1, "cnt.clear": 0})
        out = stepper.step(**{"cnt.en": 1, "cnt.clear": 0})
        assert out["cnt.q"] == 1


class TestGADatapath:
    def test_flattened_datapath_builds_and_is_acyclic(self):
        top = flatten_ga_datapath()
        top.topo_order()  # raises on cycles
        stats = top.stats()
        assert stats["dff"] > 200  # CA + counters + architectural registers
        assert stats["gates"] > 2000

    def test_register_inventory_is_complete(self):
        from repro.hdl.flatten import GA_CORE_REGISTERS

        names = {n for n, _, _ in GA_CORE_REGISTERS}
        # every Table III programmable parameter has a register
        for expected in (
            "num_generations",
            "population_size",
            "crossover_threshold",
            "mutation_threshold",
            "rng_seed",
        ):
            assert expected in names


class TestScanChain:
    def build_dut(self):
        nl = Netlist("dut")
        merge(nl, rtlib.build_counter(8), "cnt")
        insert_scan_chain(nl)
        return nl

    def test_ports_added(self):
        nl = self.build_dut()
        assert "test" in nl.inputs and "scanin" in nl.inputs
        assert "scanout" in nl.outputs

    def test_double_insert_rejected(self):
        nl = self.build_dut()
        with pytest.raises(NetlistError):
            insert_scan_chain(nl)

    def test_no_registers_rejected(self):
        nl = Netlist("comb")
        nl.add_input("a", 1)
        with pytest.raises(NetlistError):
            insert_scan_chain(nl)

    @settings(max_examples=25)
    @given(st.integers(0, 255))
    def test_scan_load_dump_roundtrip(self, value):
        nl = self.build_dut()
        stepper = Stepper(nl)
        bits = [(value >> i) & 1 for i in range(8)]
        scan_load(stepper, bits, **{"cnt.en": 0, "cnt.clear": 0})
        assert stepper.peek_flops() == bits
        assert scan_dump(stepper, **{"cnt.en": 0, "cnt.clear": 0}) == bits

    def test_scan_load_sets_functional_state(self):
        # Load 41 into the counter via scan, then count normally to 42.
        nl = self.build_dut()
        stepper = Stepper(nl)
        bits = [(41 >> i) & 1 for i in range(8)]
        scan_load(stepper, bits, **{"cnt.en": 0, "cnt.clear": 0})
        out = stepper.step(test=0, **{"cnt.en": 1, "cnt.clear": 0})
        assert out["cnt.q"] == 41
        out = stepper.step(test=0, **{"cnt.en": 1, "cnt.clear": 0})
        assert out["cnt.q"] == 42

    def test_normal_operation_unaffected_when_test_low(self):
        nl = self.build_dut()
        stepper = Stepper(nl)
        for i in range(4):
            out = stepper.step(test=0, scanin=1, **{"cnt.en": 1, "cnt.clear": 0})
            assert out["cnt.q"] == i

    def test_wrong_image_length_rejected(self):
        nl = self.build_dut()
        stepper = Stepper(nl)
        with pytest.raises(NetlistError):
            scan_load(stepper, [0, 1])

    def test_full_ga_datapath_scan_chain(self):
        top = flatten_ga_datapath()
        length = insert_scan_chain(top)
        assert length == len(top.dffs)
        stepper = Stepper(top)
        image = [i % 2 for i in range(length)]
        held = {name: 0 for name in top.inputs if name not in ("test", "scanin")}
        scan_load(stepper, image, **held)
        assert stepper.peek_flops() == image
