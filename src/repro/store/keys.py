"""Canonical job keying: a stable content hash over the determinism surface.

Every engine in this repo is deterministic by contract — the same
:class:`~repro.service.jobs.GARequest` always yields the bit-identical
:class:`~repro.service.jobs.JobResult` no matter which worker ran it, in
what batch, or at which chunk boundaries (the property suites in
``tests/service/test_determinism.py`` and ``tests/core/test_turbo.py``
lock this down).  That contract makes results *content-addressable*: the
request's determinism surface IS the result's identity, so one canonical
hash of it can key a persistent cache of finished runs.

The determinism surface of a request is everything that feeds the
evolution or the shape of its recorded result:

* the five Table III parameters — keyed as the same ``(index, value)``
  words the initialization handshake transfers (Sec. III-B.6), so the key
  schema mirrors the hardware programming model;
* the fitness slot (the Sec. III-B.5 FEM mux selector);
* the engine mode (exact vs turbo allocate RNG words differently);
* the archipelago configuration (islands / migration interval / topology);
* the protection configuration (preset, upset rate, campaign seed — the
  resilience fault streams are seed-addressed);
* ``record_trace`` (it decides whether the stored history is populated).

Scheduling-only fields — priority, deadline, retry policy, deadline mode,
``use_cache`` — move wall-clock time, never result bits, and are excluded.
The exclusion is an explicit allowlist: a *new* request field added later
joins the key by default (changing keys needlessly is safe; silently
aliasing two different computations is not).

Keys are ``sha256`` over a canonical JSON rendering (sorted keys, compact
separators) of the surface plus a schema version, so any change to the
key schema itself also changes every key.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.params import GAParameters

#: Version of the canonical key schema.  Bump whenever the canonical
#: rendering changes meaning — old store entries then miss rather than
#: alias (``RunStore.verify`` flags them for ``repro store gc``).
#: v2: the request gained a ``substrate`` field (behavioral / cycle /
#: dual32 execution engines), which joins the surface by default.
KEY_SCHEMA_VERSION = 2

#: Request wire fields that only schedule the job (ordering, deadlines,
#: retries, cache policy) and can never change the result bits.
SCHEDULING_ONLY_FIELDS = frozenset(
    {"priority", "deadline_s", "deadline_mode", "retry", "use_cache"}
)


def canonical_request_dict(request) -> dict:
    """The determinism surface of one request as a plain, stable dict.

    Starts from the full wire rendering (``request.to_dict()``) so any
    future determinism-relevant field is captured by default, strips the
    scheduling-only allowlist, and re-keys the Table III parameters as
    the handshake's ``(index, value)`` words.
    """
    surface = {
        k: v
        for k, v in request.to_dict().items()
        if k not in SCHEDULING_ONLY_FIELDS
    }
    params = GAParameters(**surface.pop("params"))
    surface["table3"] = [
        [int(index), int(value)] for index, value in params.to_index_values()
    ]
    surface["key_schema"] = KEY_SCHEMA_VERSION
    return surface


def canonical_json(payload: dict) -> str:
    """Deterministic JSON: sorted keys, compact separators, pure ASCII."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def job_key(request) -> str:
    """The content-address of one request's (deterministic) result."""
    return hashlib.sha256(
        canonical_json(canonical_request_dict(request)).encode()
    ).hexdigest()


#: ``JobResult`` wire fields that describe one particular *execution*
#: (identity, timing, scheduling shape, cache provenance) rather than the
#: deterministic result content.
EXECUTION_ONLY_FIELDS = frozenset(
    {
        "job_id",
        "latency_s",
        "wait_s",
        "n_chunks",
        "deadline_missed",
        "cache_hit",
        "store_key",
    }
)


def canonical_result_dict(result) -> dict:
    """The deterministic content of one result as a plain, stable dict.

    Two executions of the same request must agree on this rendering
    byte-for-byte (under :func:`canonical_json`) — it is what
    ``repro replay`` and the differential cache tests compare.
    """
    return {
        k: v
        for k, v in result.to_dict().items()
        if k not in EXECUTION_ONLY_FIELDS
    }


def results_identical(a, b) -> bool:
    """Bit-identity of two results' deterministic content."""
    return canonical_json(canonical_result_dict(a)) == canonical_json(
        canonical_result_dict(b)
    )
